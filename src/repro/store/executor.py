"""Parallel scan -> filter -> partial-aggregate executor.

The BigQuery stand-in's execution model: every surviving chunk (after
manifest pruning) becomes one independent task — decode the needed
columns, apply the predicate mask, compute *partial* aggregates — and
partials merge associatively at the end.  Tasks fan out over a
``multiprocessing`` pool when ``workers > 1``; everything shipped to a
worker (chunk path, predicate, aggregate specs) is plain picklable data.

Supported aggregates: ``count``, ``sum``, ``min``, ``max``, ``mean``
(merged as sum+count pairs) and ``histogram`` (fixed edges, counts merge
by addition — reusing :func:`repro.stats.histogram.histogram`).
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import obs
from repro.stats.histogram import histogram
from repro.store.format import read_chunk
from repro.store.predicates import Predicate
from repro.table.table import Table
from repro.util.errors import SchemaError

AGG_KINDS = ("count", "sum", "min", "max", "mean", "histogram")


class Agg:
    """One aggregate spec: ``kind`` over ``column`` (count needs none)."""

    def __init__(self, kind: str, column: Optional[str] = None,
                 edges: Optional[Sequence[float]] = None,
                 alias: Optional[str] = None):
        if kind not in AGG_KINDS:
            raise ValueError(f"unknown aggregate {kind!r}; use one of {AGG_KINDS}")
        if kind != "count" and column is None:
            raise ValueError(f"aggregate {kind!r} needs a column")
        if kind == "histogram" and edges is None:
            raise ValueError("histogram aggregate needs bucket edges")
        self.kind = kind
        self.column = column
        self.edges = tuple(edges) if edges is not None else None
        self.alias = alias or (kind if column is None else f"{kind}({column})")

    def columns(self) -> Set[str]:
        return set() if self.column is None else {self.column}

    def __repr__(self) -> str:
        return f"Agg({self.alias})"


# -- partial aggregation ------------------------------------------------------

def partial_aggregate(table: Table, aggs: Sequence[Agg]) -> Dict[str, object]:
    """Aggregate one chunk's (already filtered) rows into partials."""
    out: Dict[str, object] = {}
    for agg in aggs:
        if agg.kind == "count":
            out[agg.alias] = len(table)
            continue
        column = table.column(agg.column)
        if column.kind == "str" and agg.kind in ("sum", "mean", "histogram"):
            # numpy would happily "sum" an object array by concatenating
            # every string into one giant ValueError; fail cleanly instead.
            raise SchemaError(
                f"aggregate {agg.kind!r} needs a numeric column, and "
                f"{agg.column!r} is a string column"
            )
        values = column.values
        if agg.kind == "sum":
            out[agg.alias] = float(values.sum()) if len(values) else 0.0
        elif agg.kind == "min":
            out[agg.alias] = values.min() if len(values) else None
        elif agg.kind == "max":
            out[agg.alias] = values.max() if len(values) else None
        elif agg.kind == "mean":
            out[agg.alias] = (float(values.sum()) if len(values) else 0.0,
                              len(values))
        else:  # histogram
            out[agg.alias] = histogram(values, agg.edges) if len(values) \
                else np.zeros(len(agg.edges) - 1, dtype=np.int64)
    return out


def merge_partials(partials: Sequence[Dict[str, object]],
                   aggs: Sequence[Agg]) -> Dict[str, object]:
    """Associatively merge per-chunk partials and finalize each aggregate."""
    out: Dict[str, object] = {}
    for agg in aggs:
        parts = [p[agg.alias] for p in partials]
        if agg.kind == "count":
            out[agg.alias] = int(sum(parts))
        elif agg.kind == "sum":
            out[agg.alias] = float(sum(parts))
        elif agg.kind in ("min", "max"):
            seen = [p for p in parts if p is not None]
            if not seen:
                out[agg.alias] = None
            else:
                out[agg.alias] = min(seen) if agg.kind == "min" else max(seen)
        elif agg.kind == "mean":
            total = float(sum(s for s, _ in parts))
            count = int(sum(n for _, n in parts))
            out[agg.alias] = total / count if count else float("nan")
        else:  # histogram
            counts = np.zeros(len(agg.edges) - 1, dtype=np.int64)
            for p in parts:
                counts = counts + np.asarray(p)
            out[agg.alias] = counts
    return out


# -- chunk tasks --------------------------------------------------------------

#: One task: (chunk path, columns to decode, predicate or None, columns
#: to keep after filtering, reducer[, use_mmap]).  The reducer is a
#: tuple of Agg specs, a picklable callable ``Table -> payload``, or
#: None (return the filtered projection itself).  The optional sixth
#: element carries the store's mmap flag into worker processes — each
#: worker maps the chunk file itself, and the OS page cache shares the
#: physical pages across the pool.  Five-element tasks (older callers,
#: pickled plans) decode with the library default.
ChunkTask = Tuple[str, Tuple[str, ...], Optional[Predicate],
                  Tuple[str, ...], object]


def process_table(table: Table, predicate: Optional[Predicate],
                  keep_columns: Tuple[str, ...],
                  reducer) -> Tuple[object, int, int]:
    """Filter + reduce one decoded chunk.

    Returns ``(payload, rows_decoded, rows_matched)`` where the payload
    is an aggregate-partial dict (tuple-of-Agg reducer), the callable's
    return value, or the filtered projected :class:`Table` (``None``).
    """
    rows_decoded = len(table)
    if predicate is not None:
        table = table.filter(predicate.mask(table))
    rows_matched = len(table)
    if reducer is None:
        return table.select(*keep_columns), rows_decoded, rows_matched
    if callable(reducer):
        if keep_columns:
            table = table.select(*keep_columns)
        return reducer(table), rows_decoded, rows_matched
    # Aggregates run on the filtered chunk directly; projecting first
    # would turn a count-only scan into a zero-column (zero-length) table.
    return partial_aggregate(table, reducer), rows_decoded, rows_matched


def run_chunk_task(task: ChunkTask) -> Tuple[object, int, int]:
    """Decode, filter, and reduce one chunk (the worker-process entry)."""
    path, decode_columns, predicate, keep_columns, reducer, *rest = task
    use_mmap = rest[0] if rest else None
    with obs.span("store.chunk"):
        return process_table(
            read_chunk(path, decode_columns, use_mmap=use_mmap),
            predicate, keep_columns, reducer)


def traced_chunk_task(task: ChunkTask) -> Tuple[Tuple[object, int, int],
                                                obs.Snapshot]:
    """Worker-side wrapper: run one chunk task inside a *fresh* scoped
    registry and ship its metrics home alongside the payload.

    Under ``fork`` start methods the worker begins with a copy of the
    parent's registry; recording into that copy and snapshotting it
    wholesale would re-count everything the parent had already recorded.
    The fresh scoped registry makes the returned snapshot exactly the
    delta of this one task, so the parent can merge each snapshot once —
    no double counts, no drops (see the fork-safety test).
    """
    with obs.scoped_registry() as registry:
        result = run_chunk_task(task)
    return result, registry.snapshot()


def run_tasks(tasks: Sequence[ChunkTask],
              workers: Optional[int] = None) -> List[Tuple[object, int, int]]:
    """Run chunk tasks, fanning out over processes when it pays off.

    ``workers=None`` or ``<= 1`` runs inline; otherwise a pool of
    ``min(workers, len(tasks))`` processes maps over the tasks.  Results
    always come back in task order.  Worker-side obs metrics are merged
    into this process's registry in task order (exactly once per task),
    so counters agree between serial and parallel runs.
    """
    if not tasks:
        return []
    if workers is None or workers <= 1 or len(tasks) == 1:
        return [run_chunk_task(task) for task in tasks]
    n = min(workers, len(tasks))
    chunksize = max(1, len(tasks) // (n * 4))
    obs.gauge("store.pool_workers", n)
    obs.inc("store.parallel_batches")
    with multiprocessing.Pool(processes=n) as pool:
        traced = pool.map(traced_chunk_task, tasks, chunksize=chunksize)
    registry = obs.get_registry()
    for _, snapshot in traced:
        registry.merge_snapshot(snapshot)
    return [result for result, _ in traced]


def default_workers() -> int:
    """A sensible pool size: all-but-one CPU, at least one."""
    return max(1, (multiprocessing.cpu_count() or 2) - 1)
