"""LRU cache of decoded chunks, with hit/miss/eviction counters.

Repeated analyses over the same store (the common workflow: one store,
many figures) hit the same chunks again and again; caching the decoded
:class:`Table` objects turns the second and later passes into pure
in-memory scans.  Keys include the column projection, so a scan that
decodes only ``(start_time, avg_cpu)`` does not collide with a full read
of the same chunk.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

from repro import obs
from repro.table.table import Table


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __str__(self) -> str:
        return (f"hits={self.hits} misses={self.misses} "
                f"evictions={self.evictions} hit_rate={self.hit_rate:.1%}")


class ChunkCache:
    """A bounded mapping of chunk keys to decoded tables (LRU eviction)."""

    def __init__(self, capacity: int = 64):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, Table]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[Table]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            obs.inc("store.cache.misses")
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        obs.inc("store.cache.hits")
        return entry

    def put(self, key: Hashable, table: Table) -> None:
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = table
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            obs.inc("store.cache.evictions")

    def nbytes(self) -> int:
        """Approximate resident bytes of the cached tables.

        Sums the numpy buffer sizes of every cached column.  With the
        mmap read path the numeric buffers are views into the OS page
        cache, so this is an upper bound on private memory — useful when
        tuning ``cache_chunks``, where entry *count* says nothing about
        footprint.  Object (string) columns count pointer storage only.
        """
        return sum(column.values.nbytes
                   for table in self._entries.values()
                   for name in table.column_names
                   for column in (table.column(name),))

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        return (f"ChunkCache(entries={len(self._entries)}/{self.capacity}, "
                f"~{self.nbytes()} bytes, {self.stats})")
