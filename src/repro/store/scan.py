"""Lazy scans: projection + predicate pushdown over a chunked store.

A :class:`Scan` is a description — table, selected columns, predicate —
that decodes nothing until executed.  Execution consults the manifest's
per-chunk min/max statistics first: chunks the predicate provably cannot
match are *skipped* without opening their files, and only the columns
the scan actually needs (selected ∪ referenced by the predicate) are
decoded from the survivors.  :class:`ScanStats` records exactly how much
work pruning saved.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.store.executor import (
    Agg,
    ChunkTask,
    merge_partials,
    process_table,
    run_tasks,
)
from repro.store.predicates import And, Predicate
from repro.table.table import Table, concat
from repro.util.errors import SchemaError


@dataclass
class ScanStats:
    """What one scan execution actually did (and avoided)."""

    chunks_total: int = 0
    chunks_skipped: int = 0
    chunks_decoded: int = 0
    rows_decoded: int = 0
    rows_matched: int = 0

    @property
    def skip_fraction(self) -> float:
        return self.chunks_skipped / self.chunks_total if self.chunks_total else 0.0

    def __str__(self) -> str:
        return (f"chunks {self.chunks_decoded}/{self.chunks_total} decoded "
                f"({self.chunks_skipped} skipped), rows {self.rows_matched}"
                f"/{self.rows_decoded} matched")


class Scan:
    """An immutable, composable scan description over one store table."""

    def __init__(self, store, table: str,
                 columns: Optional[Tuple[str, ...]] = None,
                 predicate: Optional[Predicate] = None):
        self._store = store
        self._table = table
        self._columns = columns
        self._predicate = predicate
        #: Statistics of the most recent execution of this scan object.
        self.last_stats = ScanStats()

    # -- composition ---------------------------------------------------------

    def select(self, *columns: str) -> "Scan":
        """Restrict the scan to the named columns (projection pushdown)."""
        known = self._store.manifest.column_names(self._table)
        for name in columns:
            if name not in known:
                raise SchemaError(
                    f"table {self._table!r} has no column {name!r}; "
                    f"available: {known}"
                )
        return Scan(self._store, self._table, tuple(columns), self._predicate)

    def where(self, predicate: Predicate) -> "Scan":
        """AND another predicate onto the scan (filter pushdown)."""
        combined = predicate if self._predicate is None \
            else And(self._predicate, predicate)
        return Scan(self._store, self._table, self._columns, combined)

    # -- planning ------------------------------------------------------------

    @property
    def table(self) -> str:
        return self._table

    @property
    def predicate(self) -> Optional[Predicate]:
        return self._predicate

    def output_columns(self) -> List[str]:
        return list(self._columns) if self._columns is not None \
            else self._store.manifest.column_names(self._table)

    def _decode_columns(self, extra: Sequence[str] = ()) -> List[str]:
        """Selected columns ∪ predicate columns ∪ ``extra``, schema order."""
        needed = set(self.output_columns()) | set(extra)
        if self._predicate is not None:
            needed |= self._predicate.columns()
        return [c for c in self._store.manifest.column_names(self._table)
                if c in needed]

    def surviving_chunks(self) -> List[dict]:
        """Manifest entries of chunks the predicate cannot rule out."""
        chunks = self._store.manifest.chunks(self._table)
        if self._predicate is None:
            return list(chunks)
        return [c for c in chunks
                if self._predicate.maybe_matches(c.get("stats", {}))]

    # -- execution -----------------------------------------------------------

    def _execute(self, aggs_or_fn, keep_columns: Tuple[str, ...],
                 workers: Optional[int]) -> List[Tuple[object, int, int]]:
        with obs.span("store.scan"):
            return self._execute_inner(aggs_or_fn, keep_columns, workers)

    def _execute_inner(self, aggs_or_fn, keep_columns: Tuple[str, ...],
                       workers: Optional[int]) -> List[Tuple[object, int, int]]:
        chunks = self._store.manifest.chunks(self._table)
        survivors = self.surviving_chunks()
        stats = ScanStats(chunks_total=len(chunks),
                          chunks_skipped=len(chunks) - len(survivors))
        decode = tuple(self._decode_columns())
        if workers is not None and workers > 1 and len(survivors) > 1:
            tasks: List[ChunkTask] = [
                (str(self._store.chunk_path(c["file"])), decode,
                 self._predicate, keep_columns, aggs_or_fn,
                 self._store.use_mmap)
                for c in survivors
            ]
            results = run_tasks(tasks, workers)
        else:
            results = []
            for c in survivors:
                with obs.span("store.chunk"):
                    table = self._store.load_chunk(self._table, c["file"],
                                                   decode)
                    results.append(process_table(table, self._predicate,
                                                 keep_columns, aggs_or_fn))
        for _, rows_decoded, rows_matched in results:
            stats.chunks_decoded += 1
            stats.rows_decoded += rows_decoded
            stats.rows_matched += rows_matched
        self.last_stats = stats
        registry = obs.get_registry()
        registry.inc("store.scans")
        registry.inc("store.chunks_total", stats.chunks_total)
        registry.inc("store.chunks_skipped", stats.chunks_skipped)
        registry.inc("store.chunks_decoded", stats.chunks_decoded)
        registry.inc("store.rows_decoded", stats.rows_decoded)
        registry.inc("store.rows_matched", stats.rows_matched)
        return results

    def to_table(self, workers: Optional[int] = None) -> Table:
        """Materialize the scan as a single in-memory :class:`Table`."""
        keep = tuple(self.output_columns())
        results = self._execute(None, keep, workers)
        parts = [payload for payload, _, _ in results]
        if not parts:
            return self._store.empty_table(self._table, keep)
        return concat(parts)

    def aggregate(self, *aggs: Agg, workers: Optional[int] = None) -> Dict[str, object]:
        """Evaluate aggregates with per-chunk partials merged at the end."""
        if not aggs:
            raise ValueError("aggregate() needs at least one Agg")
        if self._predicate is None and all(a.kind == "count" for a in aggs):
            # Pure counts over an unfiltered table come straight from the
            # manifest: no chunk is opened at all.
            chunks = self._store.manifest.chunks(self._table)
            self.last_stats = ScanStats(chunks_total=len(chunks))
            rows = self._store.manifest.rows(self._table)
            obs.inc("store.scans_manifest_only")
            return {a.alias: rows for a in aggs}
        results = self._execute(tuple(aggs), (), workers)
        return merge_partials([payload for payload, _, _ in results], aggs)

    def count(self, workers: Optional[int] = None) -> int:
        return self.aggregate(Agg("count"), workers=workers)["count"]

    def map_reduce(self, map_fn: Callable[[Table], object],
                   reduce_fn: Optional[Callable[[object, object], object]] = None,
                   workers: Optional[int] = None):
        """Apply a picklable ``map_fn`` to each surviving chunk's filtered,
        projected rows; combine payloads pairwise with ``reduce_fn`` (or
        return the list of payloads in chunk order when it is ``None``).

        This is the escape hatch for reductions richer than the built-in
        aggregates — e.g. the store-aware analysis reducers group and bin
        inside ``map_fn`` and merge partial vectors in ``reduce_fn``.
        """
        keep = tuple(self.output_columns())
        results = self._execute(map_fn, keep, workers)
        payloads = [payload for payload, _, _ in results]
        if reduce_fn is None:
            return payloads
        return functools.reduce(reduce_fn, payloads) if payloads else None
