"""Pushdown predicates: picklable filters evaluated at two levels.

Every predicate answers two questions:

* :meth:`Predicate.maybe_matches` — given a chunk's ``{column: {"min",
  "max"}}`` statistics, *could* any row match?  ``False`` proves the
  chunk is irrelevant and it is skipped without decoding (pushdown).
  ``True`` is conservative: statistics can never prove a match, only
  rule one out.
* :meth:`Predicate.mask` — given a decoded :class:`Table`, the exact
  boolean row mask.

Unlike :class:`repro.table.expr.Expr` (closures, not picklable), these
are plain data objects, so the parallel executor can ship them to worker
processes, and scans can reason about which columns they touch.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Set, Tuple

import numpy as np

from repro.table.table import Table

Stats = Dict[str, Dict[str, object]]

_OPS = ("==", "!=", "<", "<=", ">", ">=")


class Predicate:
    """Base class; combine with ``&`` and ``|``."""

    def columns(self) -> Set[str]:
        raise NotImplementedError

    def maybe_matches(self, stats: Stats) -> bool:
        raise NotImplementedError

    def mask(self, table: Table) -> np.ndarray:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __repr__(self) -> str:
        return self.describe()

    def describe(self) -> str:
        raise NotImplementedError


def _bounds(stats: Stats, column: str) -> Tuple[object, object]:
    """(min, max) for ``column``, or ``(None, None)`` when unknown."""
    entry = stats.get(column)
    if not entry:
        return None, None
    return entry.get("min"), entry.get("max")


class Compare(Predicate):
    """``column <op> value`` for a scalar value."""

    def __init__(self, column: str, op: str, value):
        if op not in _OPS:
            raise ValueError(f"unknown operator {op!r}; use one of {_OPS}")
        self.column = column
        self.op = op
        self.value = value

    def columns(self) -> Set[str]:
        return {self.column}

    def maybe_matches(self, stats: Stats) -> bool:
        lo, hi = _bounds(stats, self.column)
        if lo is None:
            return True
        v, op = self.value, self.op
        try:
            if op == "==":
                return lo <= v <= hi
            if op == "!=":
                return not (lo == hi == v)
            if op == "<":
                return lo < v
            if op == "<=":
                return lo <= v
            if op == ">":
                return hi > v
            return hi >= v
        except TypeError:
            # Incomparable stat/value types (e.g. str stats vs numeric
            # predicate): never prune on type confusion.
            return True

    def mask(self, table: Table) -> np.ndarray:
        column = table.column(self.column)
        return {
            "==": column.__eq__, "!=": column.__ne__,
            "<": column.__lt__, "<=": column.__le__,
            ">": column.__gt__, ">=": column.__ge__,
        }[self.op](self.value)

    def describe(self) -> str:
        return f"({self.column} {self.op} {self.value!r})"


class Between(Predicate):
    """Inclusive range test (SQL ``BETWEEN``) — the time-window workhorse."""

    def __init__(self, column: str, lo, hi):
        self.column = column
        self.lo = lo
        self.hi = hi

    def columns(self) -> Set[str]:
        return {self.column}

    def maybe_matches(self, stats: Stats) -> bool:
        lo, hi = _bounds(stats, self.column)
        if lo is None:
            return True
        try:
            return hi >= self.lo and lo <= self.hi
        except TypeError:
            return True

    def mask(self, table: Table) -> np.ndarray:
        values = table.column(self.column).values
        return np.asarray((values >= self.lo) & (values <= self.hi), dtype=bool)

    def describe(self) -> str:
        return f"({self.column} between {self.lo!r} and {self.hi!r})"


class IsIn(Predicate):
    """Membership in a finite value set."""

    def __init__(self, column: str, values: Iterable):
        self.column = column
        self.values = tuple(values)

    def columns(self) -> Set[str]:
        return {self.column}

    def maybe_matches(self, stats: Stats) -> bool:
        lo, hi = _bounds(stats, self.column)
        if lo is None:
            return True
        try:
            return any(lo <= v <= hi for v in self.values)
        except TypeError:
            return True

    def mask(self, table: Table) -> np.ndarray:
        return table.column(self.column).isin(self.values)

    def describe(self) -> str:
        return f"({self.column} in {list(self.values)!r})"


class _Combined(Predicate):
    def __init__(self, *parts: Predicate):
        flat = []
        for part in parts:
            if type(part) is type(self):
                flat.extend(part.parts)  # type: ignore[attr-defined]
            else:
                flat.append(part)
        self.parts: Sequence[Predicate] = tuple(flat)

    def columns(self) -> Set[str]:
        out: Set[str] = set()
        for part in self.parts:
            out |= part.columns()
        return out


class And(_Combined):
    def maybe_matches(self, stats: Stats) -> bool:
        return all(part.maybe_matches(stats) for part in self.parts)

    def mask(self, table: Table) -> np.ndarray:
        out = np.ones(len(table), dtype=bool)
        for part in self.parts:
            out &= part.mask(table)
        return out

    def describe(self) -> str:
        return "(" + " & ".join(p.describe() for p in self.parts) + ")"


class Or(_Combined):
    def maybe_matches(self, stats: Stats) -> bool:
        return any(part.maybe_matches(stats) for part in self.parts)

    def mask(self, table: Table) -> np.ndarray:
        out = np.zeros(len(table), dtype=bool)
        for part in self.parts:
            out |= part.mask(table)
        return out

    def describe(self) -> str:
        return "(" + " | ".join(p.describe() for p in self.parts) + ")"
