"""Pluggable event queues for the discrete-event engine.

:class:`CellSim` schedules every future action as a ``(time, seq, kind,
payload)`` entry and always pops the entry with the smallest ``(time,
seq)`` — ``seq`` is a per-queue monotone counter, so ties at one
timestamp resolve in push order.  Two implementations provide that
contract:

* :class:`HeapEventQueue` — the classic global binary heap
  (``heapq``): O(log n) push/pop, no assumptions about event times.
* :class:`CalendarEventQueue` — a bucketed calendar queue keyed on
  simulated time: events land in fixed-width time buckets, a cursor
  sweeps the buckets once from 0 to the horizon, and only the *current*
  bucket is heap-ordered.  Push is O(1) amortized (an append, or an
  O(log b) heap push for the small current bucket), pop is O(log b)
  where b is the bucket occupancy — for the simulator's near-future-
  dominated event mix (5 s scheduling rounds, 5-minute usage windows,
  hazard delays) b stays tiny while the global heap would hold hundreds
  of thousands of entries.

Ordering equivalence: bucket index is a monotone function of time, so
``t1 < t2`` implies ``bucket(t1) <= bucket(t2)``; within one bucket the
heap orders by ``(time, seq)``; and equal times always share a bucket.
Identical push sequences therefore produce *identical* pop sequences
from both implementations — the property the goldens and the hypothesis
test in ``tests/test_eventq.py`` pin.

The calendar queue assumes event times are non-decreasing with respect
to the pop cursor (a discrete-event simulation never schedules into the
past).  Times at or beyond the horizon are tolerated — they land in the
last bucket and still pop in ``(time, seq)`` order — but the simulator
drops them before they reach the queue (nothing past the horizon is
ever processed; see ``CellSim._push``).

The module-level default (``"heap"`` unless overridden via
:func:`set_default_queue`) is what a :class:`~repro.sim.cell.CellConfig`
with ``queue=None`` resolves to.  The override hook exists for harness
code (conftest, benches) — nothing inside ``repro.sim`` reads the
environment (RPR002/RPR008).
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import List, Optional, Tuple

#: One scheduled event: (time, seq, kind, payload).
Entry = Tuple[float, int, str, object]

QUEUE_KINDS = ("heap", "calendar")

_DEFAULT_QUEUE = "heap"

#: Calendar bucket width, seconds.  Matched to the event mix's natural
#: spacing (5 s scheduling rounds, hazards spread over hours): at the
#: paper-scale week this yields ~75k buckets holding ~15 events each.
DEFAULT_BUCKET_WIDTH = 8.0


def set_default_queue(kind: str) -> None:
    """Set the queue implementation ``CellConfig(queue=None)`` resolves to."""
    if kind not in QUEUE_KINDS:
        raise ValueError(f"unknown event queue {kind!r}; use one of {QUEUE_KINDS}")
    global _DEFAULT_QUEUE
    _DEFAULT_QUEUE = kind


def get_default_queue() -> str:
    """The current default queue kind (``"heap"`` unless overridden)."""
    return _DEFAULT_QUEUE


def make_queue(kind: Optional[str], horizon: float):
    """Build an event queue; ``kind=None`` uses the module default."""
    resolved = kind if kind is not None else _DEFAULT_QUEUE
    if resolved == "heap":
        return HeapEventQueue()
    if resolved == "calendar":
        return CalendarEventQueue(horizon)
    raise ValueError(f"unknown event queue {resolved!r}; use one of {QUEUE_KINDS}")


class HeapEventQueue:
    """The reference implementation: one global binary heap."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Entry] = []
        self._seq = itertools.count()

    def push(self, time: float, kind: str, payload: object) -> None:
        heappush(self._heap, (time, next(self._seq), kind, payload))

    def pop(self) -> Entry:
        return heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class CalendarEventQueue:
    """A bucketed calendar queue over ``[0, horizon)``.

    Buckets are created lazily (``None`` until first touched) and freed
    once the cursor sweeps past them, so memory tracks the live event
    population, not the horizon length.
    """

    __slots__ = ("_width", "_nbuckets", "_buckets", "_cursor", "_count",
                 "_seq", "_cursor_heaped")

    def __init__(self, horizon: float,
                 bucket_width: float = DEFAULT_BUCKET_WIDTH) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        self._width = bucket_width
        self._nbuckets = max(1, -int(-horizon // bucket_width))
        self._buckets: List[Optional[List[Entry]]] = [None] * self._nbuckets
        self._cursor = 0
        self._count = 0
        self._seq = itertools.count()
        #: Whether the cursor bucket has been heapified (it is heap-
        #: ordered from first pop out of it onward; earlier it is a
        #: plain append list).
        self._cursor_heaped = False

    def push(self, time: float, kind: str, payload: object) -> None:
        b = int(time // self._width)
        if b >= self._nbuckets:
            # At/past the horizon: the last bucket still orders these
            # correctly by (time, seq) — they sort after everything else.
            b = self._nbuckets - 1
        if b < self._cursor:
            # Equal-to-now times always share the cursor bucket (floor is
            # monotone); anything earlier would be scheduling into the
            # past, which the simulator never does.  Routing it to the
            # cursor bucket keeps the queue well-formed regardless.
            b = self._cursor
        entry = (time, next(self._seq), kind, payload)
        bucket = self._buckets[b]
        if bucket is None:
            self._buckets[b] = [entry]
        elif b == self._cursor and self._cursor_heaped:
            heappush(bucket, entry)
        else:
            bucket.append(entry)
        self._count += 1

    def pop(self) -> Entry:
        if not self._count:
            raise IndexError("pop from an empty CalendarEventQueue")
        buckets = self._buckets
        cursor = self._cursor
        bucket = buckets[cursor]
        if not bucket:
            # Sweep forward to the next occupied bucket, freeing the
            # exhausted ones behind the cursor.
            while not bucket:
                buckets[cursor] = None
                cursor += 1
                bucket = buckets[cursor]
            self._cursor = cursor
            self._cursor_heaped = False
        if not self._cursor_heaped:
            heapify(bucket)
            self._cursor_heaped = True
        self._count -= 1
        return heappop(bucket)

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0
