"""Domain entities: collections (jobs and alloc sets) and instances.

Terminology follows the 2019 trace: a *collection* is a job or an alloc
set; an *instance* is a task (of a job) or an alloc instance (of an
alloc set).  Tasks of a job marked to run inside an alloc set are placed
into that set's alloc instances rather than directly onto machines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.sim.priority import Tier
from repro.sim.resources import Resources


class CollectionType(enum.Enum):
    JOB = "job"
    ALLOC_SET = "alloc_set"


class InstanceState(enum.Enum):
    """Lifecycle states (paper figure 7)."""

    SUBMITTED = "submitted"
    QUEUED = "queued"      # held by the batch scheduler
    PENDING = "pending"    # ready; awaiting a placement decision
    RUNNING = "running"
    DEAD = "dead"


class EndReason(enum.Enum):
    """The four termination causes of section 5.2."""

    FINISH = "finish"  # completed normally
    EVICT = "evict"    # de-scheduled by the infrastructure
    KILL = "kill"      # canceled by the user or a parent-exit cascade
    FAIL = "fail"      # the workload's own problem (segfault, OOM, ...)


class SchedulerKind(enum.Enum):
    """Which scheduler admits the collection (Borg is multi-scheduler)."""

    BORG = "borg"
    BATCH = "batch"


@dataclass(eq=False, slots=True)
class Collection:
    """A job or an alloc set, plus its scheduling metadata.

    ``slots=True`` (here and on :class:`Instance`): the simulator holds
    hundreds of thousands of these and reads their attributes in every
    hot path — slot access is faster than a dict lookup and the objects
    shrink considerably.  Identity semantics (``eq=False``) are kept.
    """

    collection_id: int
    collection_type: CollectionType
    priority: int
    tier: Tier
    user: str
    submit_time: float
    scheduler: SchedulerKind = SchedulerKind.BORG
    parent_id: Optional[int] = None
    alloc_collection_id: Optional[int] = None  # the alloc set a job runs in
    autopilot_mode: str = "none"               # see sim.autopilot
    #: Placement constraint: required machine platform ("" = none).  The
    #: 2019 trace exposes such machine-attribute constraints (section 1).
    constraint: str = ""

    planned_duration: float = 0.0
    planned_end: EndReason = EndReason.FINISH
    #: Fraction of the CPU limit a task of this collection typically uses.
    cpu_usage_fraction: float = 0.5
    #: Fraction of the memory limit a task typically uses.
    mem_usage_fraction: float = 0.5
    instances: List["Instance"] = field(default_factory=list)

    # Lifecycle bookkeeping (filled in by the simulator).
    enable_time: Optional[float] = None        # left the batch queue / became ready
    first_running_time: Optional[float] = None
    end_time: Optional[float] = None
    end_reason: Optional[EndReason] = None
    child_ids: List[int] = field(default_factory=list)

    #: Derived flag resolved once at construction (collection_type never
    #: changes); a plain attribute because the simulator reads it on
    #: every placement and usage interval, where a property's descriptor
    #: call is measurable.
    is_alloc_set: bool = field(init=False)

    def __post_init__(self):
        self.is_alloc_set = self.collection_type is CollectionType.ALLOC_SET

    @property
    def is_done(self) -> bool:
        return self.end_reason is not None

    @property
    def num_instances(self) -> int:
        return len(self.instances)

    def live_instances(self) -> List["Instance"]:
        return [i for i in self.instances if i.state is not InstanceState.DEAD]

    def scheduling_delay(self) -> Optional[float]:
        """Ready-to-first-task-running latency (the figure 10 metric)."""
        if self.enable_time is None or self.first_running_time is None:
            return None
        return max(0.0, self.first_running_time - self.enable_time)


@dataclass(eq=False, slots=True)
class Instance:
    """One replica: a task, or one alloc instance of an alloc set."""

    collection: Collection
    index: int
    request: Resources                      # the schedule-time limit
    state: InstanceState = InstanceState.SUBMITTED
    machine_id: Optional[int] = None
    #: For tasks inside an alloc set: the hosting alloc instance.
    alloc_instance: Optional["Instance"] = None
    #: For alloc instances: resources already claimed by tasks inside.
    claimed: Resources = Resources.ZERO
    start_time: Optional[float] = None      # current run's start
    pending_since: Optional[float] = None
    #: Completed execution intervals: (start, end, machine_id, cpu_limit, mem_limit).
    run_intervals: List[Tuple[float, float, int, float, float]] = field(default_factory=list)
    n_schedules: int = 0                    # placements, incl. reschedules
    n_evictions: int = 0
    #: Bumped on every start/stop so stale hazard events can be discarded.
    incarnation: int = 0
    end_reason: Optional[EndReason] = None

    @property
    def instance_id(self) -> Tuple[int, int]:
        return (self.collection.collection_id, self.index)

    @property
    def priority(self) -> int:
        return self.collection.priority

    @property
    def tier(self) -> Tier:
        return self.collection.tier

    #: Mirror of the owning collection's ``is_alloc_set``, resolved once
    #: (an instance never changes collection) — same hot-path reasoning.
    is_alloc_instance: bool = field(init=False)

    def __post_init__(self):
        self.is_alloc_instance = self.collection.is_alloc_set

    @property
    def constraint(self) -> str:
        return self.collection.constraint

    def available_in_alloc(self) -> Resources:
        """Free room inside this alloc instance (alloc instances only)."""
        if not self.is_alloc_instance:
            raise ValueError("available_in_alloc on a task instance")
        return self.request - self.claimed

    def record_stop(self, t: float) -> None:
        """Close the current run interval at time ``t``."""
        if self.start_time is None or self.machine_id is None:
            raise ValueError(f"instance {self.instance_id} stopped while not running")
        if t < self.start_time:
            raise ValueError(f"stop at {t} before start {self.start_time}")
        self.run_intervals.append(
            (self.start_time, t, self.machine_id, self.request.cpu, self.request.mem)
        )
        self.start_time = None
        self.machine_id = None
