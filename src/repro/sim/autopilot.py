"""Autopilot: vertical autoscaling of per-instance resource limits.

Borg's Autopilot (paper section 8, and its companion paper) predicts a
job's resource needs and continually adjusts limits to shave *slack* —
the gap between the limit and actual usage.  The 2019 trace marks each
job as not autoscaled, fully autoscaled, or autoscaled under
constraints; the paper's figure 14 shows fully < constrained < manual
in peak-NCU-slack CCDF terms.

We implement Autopilot as a causal limit controller: at each sample
window the limit for the *next* window is set from the peak usage seen
over a trailing horizon, times a safety margin — exactly the moving
peak-window estimator the Autopilot paper describes as its default.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class AutopilotMode(enum.Enum):
    NONE = "none"
    FULLY = "fully"
    CONSTRAINED = "constrained"


@dataclass(frozen=True)
class AutopilotParams:
    """Controller parameters."""

    #: Safety margin applied on top of the trailing peak.
    margin: float = 1.05
    #: Trailing window length, in sample periods, for the peak estimate.
    peak_window: int = 3
    #: Fully-autoscaled limits may shrink to this fraction of the request.
    min_limit_fraction_fully: float = 0.05
    #: Constrained autoscaling may not shrink below this fraction (a user
    #: -set lower bound is the most common constraint in practice).
    min_limit_fraction_constrained: float = 0.80


def limit_trajectory(mode: AutopilotMode, initial_limit: float,
                     max_usage: np.ndarray,
                     params: AutopilotParams = AutopilotParams()) -> np.ndarray:
    """Per-window limits given realized peak usage.

    ``max_usage[w]`` is the within-window peak; the returned ``limits[w]``
    is the limit in force during window ``w``.  The controller is causal:
    ``limits[w]`` depends only on usage in windows ``< w``.  Limits never
    drop below the current observed peak (Autopilot raises limits
    immediately on overload to avoid throttling/OOM).
    """
    n = len(max_usage)
    limits = np.full(n, float(initial_limit))
    if mode is AutopilotMode.NONE or n <= 1:
        return limits

    if mode is AutopilotMode.FULLY:
        floor = initial_limit * params.min_limit_fraction_fully
    else:
        floor = initial_limit * params.min_limit_fraction_constrained

    # Vectorized form of the per-window loop: trailing[w-1] is the max
    # of the up-to-peak_window previous usage peaks, built by folding
    # shifted copies together (max selection is exact, so this equals
    # the loop's np.max over each trailing slice bit-for-bit).
    mu = np.asarray(max_usage, dtype=float)
    trailing = mu[:-1].copy()
    for shift in range(2, min(params.peak_window, n - 1) + 1):
        trailing[shift - 1:] = np.maximum(trailing[shift - 1:], mu[:n - shift])
    target = trailing * params.margin
    # clip(a, lo, hi) spelled as its definition minimum(maximum(a, lo),
    # hi): identical floats for the finite values here, without np.clip's
    # per-call dispatch overhead.
    window_limits = np.minimum(np.maximum(target, floor), initial_limit)
    # React to overload within the window: never cap below usage.
    overload = window_limits < mu[1:]
    window_limits[overload] = np.minimum(initial_limit,
                                         mu[1:][overload] * params.margin)
    limits[1:] = window_limits
    return limits


def limit_trajectory_rows(wpos: np.ndarray, mu: np.ndarray,
                          initial: np.ndarray, floor: np.ndarray,
                          params: AutopilotParams = AutopilotParams()) -> np.ndarray:
    """Row-vectorized :func:`limit_trajectory` over concatenated segments.

    Inputs are per-*window* rows of many records' trajectories laid out
    back to back in record order: ``wpos`` is each row's 0-based window
    position within its record (so a new record starts wherever ``wpos``
    returns to 0), ``mu`` the within-window peak usage, and ``initial``/
    ``floor`` the record's limit and floor repeated across its rows.

    Returns the same limits as calling :func:`limit_trajectory` once per
    record, bit-for-bit: the trailing-peak fold uses the same exact
    ``np.maximum`` selections (max is order-free and exact), and every
    elementwise op matches the scalar-parameter spelling — a float64
    array cell multiplies/compares exactly like the Python scalar it was
    broadcast from.  The equivalence property test pins this.
    """
    limits = initial.copy()
    if not len(mu):
        return limits
    margin = params.margin
    # Rows past window 0 take the trailing-peak controller; window-0 rows
    # keep the initial limit (the per-record path's n <= 1 early return
    # falls out of the same mask).
    jv = np.flatnonzero(wpos >= 1)
    if not jv.size:
        return limits
    # trailing[w] = max(mu[w-1], ..., mu[w-peak_window]) within the
    # record, built by shifted folds exactly like the per-record loop;
    # segments are contiguous, so row j-s is window wpos[j]-s of the
    # same record precisely when wpos[j] >= s.
    trailing = np.empty(len(mu))
    trailing[jv] = mu[jv - 1]
    for shift in range(2, params.peak_window + 1):
        j = np.flatnonzero(wpos >= shift)
        if not j.size:
            break
        trailing[j] = np.maximum(trailing[j], mu[j - shift])
    window_limits = np.minimum(
        np.maximum(trailing[jv] * margin, floor[jv]), initial[jv])
    mu_v = mu[jv]
    overload = window_limits < mu_v
    if overload.any():
        window_limits[overload] = np.minimum(
            initial[jv][overload], mu_v[overload] * margin)
    limits[jv] = window_limits
    return limits


def peak_slack(limits: np.ndarray, max_usage: np.ndarray) -> np.ndarray:
    """Peak NCU slack per sample window (the figure 14 metric).

    slack = max(0, limit - peak usage) / limit, as a fraction in [0, 1].
    Windows with a zero limit are defined to have zero slack.
    """
    limits = np.asarray(limits, dtype=float)
    max_usage = np.asarray(max_usage, dtype=float)
    if limits.shape != max_usage.shape:
        raise ValueError(f"shape mismatch: {limits.shape} vs {max_usage.shape}")
    out = np.zeros_like(limits)
    nonzero = limits > 0
    out[nonzero] = np.maximum(0.0, limits[nonzero] - max_usage[nonzero]) / limits[nonzero]
    return out
