"""The discrete-event engine driving one Borg cell.

``CellSim`` consumes a pre-generated workload (collections with submit
times, shapes, planned outcomes) and plays it against a machine fleet:
batch-queue admission, round-based scheduling with preemption, task
restarts, machine maintenance, dependency cascade kills, and usage
sampling.  The output is a :class:`CellResult` holding the event log,
the usage-sample arrays, and the final collection states.
"""

from __future__ import annotations

import gc
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.faults.schedule import FaultEvent, FaultParams, generate_fault_schedule
from repro.obs.recorder import CellRecorder
from repro.sim.autopilot import AutopilotParams
from repro.sim.batch import BatchParams, BatchQueue
from repro.sim.dependencies import DependencyManager
from repro.sim.entities import (
    Collection,
    CollectionType,
    EndReason,
    Instance,
    InstanceState,
    SchedulerKind,
)
from repro.sim.eventq import QUEUE_KINDS, make_queue
from repro.sim.events import EventLog, EventType
from repro.sim.fleet import FleetState
from repro.sim.machine import Machine
from repro.sim.priority import Tier
from repro.sim.resources import Resources
from repro.sim.scheduler import PendingQueue, PlacementPolicy, SchedulerParams
from repro.sim.usage import (
    AUTOPILOT_CODES,
    TIER_CODES,
    UsageBatch,
    UsageModel,
    UsageModelParams,
)

# Re-exported for consumers that treat the cell module as the simulator
# façade (tests import TIER_CODES from here).
__all__ = ["CellSim", "CellResult", "TIER_CODES", "_reconcile_machine_usage"]
from repro.util.errors import SimulationError
from repro.util.rng import RngFactory
from repro.util.timeutil import HOUR_SECONDS

_END_EVENT = {
    EndReason.FINISH: EventType.FINISH,
    EndReason.EVICT: EventType.EVICT,
    EndReason.KILL: EventType.KILL,
    EndReason.FAIL: EventType.FAIL,
}



@dataclass(frozen=True)
class CellConfig:
    """Everything that parameterizes one cell's behavior."""

    name: str
    era: str  # "2011" | "2019"
    utc_offset_hours: float = 0.0
    horizon: float = 24 * HOUR_SECONDS
    scheduler: SchedulerParams = field(default_factory=SchedulerParams)
    batch: BatchParams = field(default_factory=BatchParams)
    usage: UsageModelParams = field(default_factory=UsageModelParams)
    autopilot: AutopilotParams = field(default_factory=AutopilotParams)
    sample_period: float = 300.0
    #: Whether a best-effort batch queue exists (2019 only; section 3).
    batch_queueing: bool = True
    #: Infrastructure-eviction hazard per running instance per hour, by tier.
    eviction_rate_per_hour: Dict[Tier, float] = field(default_factory=lambda: {
        Tier.FREE: 0.004, Tier.BEB: 0.003, Tier.MID: 0.002,
        Tier.PROD: 0.00005, Tier.MONITORING: 0.00002,
    })
    #: Task-level crash/restart hazard per running instance per hour
    #: (drives the figure 9 "churn" ratio).
    restart_rate_per_hour: float = 0.5
    #: Machine maintenance events per machine per 30 days (~1/month).
    machine_downtime_per_month: float = 1.0
    #: Maintenance outage duration, seconds.
    machine_downtime_duration: float = 900.0
    #: Tiers allowed to preempt lower tiers.
    preempting_tiers: Tuple[Tier, ...] = (Tier.PROD, Tier.MONITORING)
    #: Correlated fault injection (rack/power-domain outages, rolling
    #: upgrades, resubmission storms).  ``None`` — the default — keeps
    #: the cell byte-identical to a pre-fault-injection run: no extra
    #: RNG draws, no extra events (DESIGN.md §14).
    faults: Optional[FaultParams] = None
    #: Event-queue implementation: ``"heap"``, ``"calendar"``, or
    #: ``None`` to use the library default
    #: (:func:`repro.sim.eventq.set_default_queue`).  Both produce
    #: bit-identical runs (DESIGN.md §15); calendar is faster at scale.
    queue: Optional[str] = None

    def __post_init__(self):
        if self.era not in ("2011", "2019"):
            raise ValueError(f"era must be '2011' or '2019', got {self.era!r}")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.queue is not None and self.queue not in QUEUE_KINDS:
            raise ValueError(f"queue must be one of {QUEUE_KINDS} or None, "
                             f"got {self.queue!r}")


@dataclass
class SimCounters:
    """Cheap integrity/diagnostic counters maintained during the run."""

    jobs_submitted: int = 0
    alloc_sets_submitted: int = 0
    tasks_created: int = 0
    schedule_events: int = 0
    reschedule_events: int = 0
    evictions: int = 0
    task_restarts: int = 0
    preemption_victims: int = 0
    machine_downtimes: int = 0
    batch_queued: int = 0
    cascade_kills: int = 0
    fault_events: int = 0
    fault_machine_outages: int = 0
    resubmissions: int = 0
    resubmit_chain_exhausted: int = 0
    resubmit_budget_exhausted: int = 0


@dataclass
class CellResult:
    """Everything a trace encoder or analysis needs from one cell run."""

    config: CellConfig
    machines: List[Machine]
    collections: List[Collection]
    events: EventLog
    usage: Dict[str, np.ndarray]
    counters: SimCounters

    @property
    def capacity(self) -> Resources:
        cpu = sum(m.capacity.cpu for m in self.machines)
        mem = sum(m.capacity.mem for m in self.machines)
        return Resources(cpu, mem)


def _reconcile_machine_usage(usage: Dict[str, np.ndarray],
                             machines: Union[Sequence[Machine], FleetState],
                             sample_period: float) -> None:
    """Throttle sampled usage to physical machine capacity, in place.

    Per-instance usage is generated independently, so on an over-committed
    machine the within-window sum can exceed what the hardware can
    deliver.  Real Borg machines throttle CPU (work conserving) and
    pressure memory under contention; we model both as a proportional
    per-(machine, window) scale-down to 98% of capacity.  This is also
    what makes the section-9 "usage <= machine capacity" trace invariant
    hold by construction rather than by luck.

    ``machines`` may be a :class:`FleetState` (the simulator passes its
    own) or a plain machine sequence (snapshotted here); either way the
    per-group capacity lookup is one vectorized
    :meth:`FleetState.capacity_by_id` gather, not a Python loop.
    """
    n = len(usage["window_start"])
    if n == 0:
        return
    fleet = (machines if isinstance(machines, FleetState)
             else FleetState(machines, attach=False))
    machine_ids = usage["machine_id"].astype(np.int64)
    window = (usage["window_start"] / sample_period).astype(np.int64)
    key = machine_ids * 10_000_000 + window
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    starts = np.concatenate([[0], np.flatnonzero(np.diff(sorted_key)) + 1])
    group_machines = machine_ids[order][starts]
    limit_cpu, limit_mem = fleet.capacity_by_id(group_machines)
    counts = np.diff(np.append(starts, n))
    for col_avg, col_max, limits in (("avg_cpu", "max_cpu", limit_cpu),
                                     ("avg_mem", "max_mem", limit_mem)):
        sums = np.add.reduceat(usage[col_avg][order], starts)
        factors = np.ones(len(starts))
        over = sums > limits * 0.98
        factors[over] = (limits[over] * 0.98) / sums[over]
        # Scatter the per-group factor back to rows.
        row_factors = np.repeat(factors, counts)
        scale = np.ones(n)
        scale[order] = row_factors
        usage[col_avg] *= scale
        usage[col_max] *= scale


class CellSim:
    """Runs one cell to its horizon."""

    def __init__(self, config: CellConfig, machines: Sequence[Machine],
                 workload: Sequence[Collection], rng: RngFactory,
                 recorder: Optional["CellRecorder"] = None):
        if not machines:
            raise SimulationError("a cell needs at least one machine")
        self.config = config
        self.machines = list(machines)
        self.machines_by_id = {m.machine_id: m for m in self.machines}
        #: Columnar mirror of the fleet, kept in sync by machine
        #: mutations; the placement kernel runs against these arrays.
        self.fleet = FleetState(self.machines)
        self.workload = sorted(workload, key=lambda c: c.submit_time)
        self.rng = rng
        self.events = EventLog()
        self.counters = SimCounters()

        self._horizon = config.horizon
        self._queue = make_queue(config.queue, config.horizon)
        self._queue_push = self._queue.push
        self._pending = PendingQueue()
        #: Tasks that failed placement wait here and are retried on a
        #: slower cadence than fresh arrivals — re-scanning a saturated
        #: cell for the same hard-to-fit shapes every round is wasted work.
        self._parked = PendingQueue()
        self._parked_retry_at = 0.0
        self._parked_retry_interval = max(30.0, config.scheduler.round_interval)
        self._round_scheduled = False
        self._batch_check_scheduled = False
        self._collections: Dict[int, Collection] = {}
        self._deps = DependencyManager()
        self._policy = PlacementPolicy(config.scheduler, rng.stream("placement"))
        self._usage_model = UsageModel(config.usage, config.sample_period,
                                       config.utc_offset_hours)
        #: Run intervals queued for batched sample generation (one
        #: vectorized pass at finalize instead of numpy calls per stop).
        self._usage = UsageBatch(self._usage_model, config.autopilot)
        cell_capacity = Resources(
            sum(m.capacity.cpu for m in self.machines),
            sum(m.capacity.mem for m in self.machines),
        )
        self._batch = BatchQueue(config.batch, cell_capacity)
        self._batch_admitted: set = set()
        #: tasks hosted inside each alloc instance
        self._alloc_tenants: Dict[Tuple[int, int], List[Instance]] = {}

        #: Optional flight recorder (``simulate --record``); sampling is
        #: driven from the event loop behind an ``is not None`` guard
        #: (RPR007), so an unrecorded run pays one comparison per event.
        self.recorder = recorder
        if recorder is not None:
            recorder.attach({"pending": self._pending.__len__,
                             "parked": self._parked.__len__},
                            counters_probe=lambda: vars(self.counters))

        self._rng_hazard = rng.stream("hazards")
        self._rng_usage = rng.stream("usage")
        self._rng_machine = rng.stream("machine-downtime")
        # Fault-injection state.  Everything here is created only when
        # faults are configured: an unfaulted cell must not consume RNG
        # streams or change its event sequence in any way.
        self._resubmit_policy = (config.faults.resubmit
                                 if config.faults is not None else None)
        if config.faults is not None:
            self._fault_domains = config.faults.domains_for(len(self.machines))
            self._rng_faults = rng.stream("faults")
        if self._resubmit_policy is not None:
            self._rng_resubmit = rng.stream("resubmit")
            #: collection_id -> (chain root id, attempt number so far).
            self._resubmit_meta: Dict[int, Tuple[int, int]] = {}
            #: Remaining per-user retry budget (the storm brake).
            self._user_retry_left: Dict[str, int] = {}
            # Resubmitted clones need fresh ids far above the workload's
            # own id range (uniqueness is per-cell).
            max_id = max((c.collection_id for c in self.workload), default=0)
            self._resubmit_ids = itertools.count(max_id + 1_000_000)
        # Hazard-arming fast path: exponential scales precomputed per
        # tier (same float64 division, done once instead of per arming)
        # and the generator methods bound once.  Every schedule event
        # arms hazards, so this path runs once per placement.
        self._hazard_exp = self._rng_hazard.exponential
        self._hazard_random = self._rng_hazard.random
        self._evict_scale = {
            tier.rank: HOUR_SECONDS / rate
            for tier, rate in config.eviction_rate_per_hour.items() if rate > 0
        }
        self._restart_scale = (
            HOUR_SECONDS / config.restart_rate_per_hour
            if config.restart_rate_per_hour > 0 else 0.0
        )

    # ------------------------------------------------------------------ setup

    def _push(self, time: float, kind: str, payload: object) -> None:
        # Nothing scheduled at or past the horizon is ever processed (the
        # run loop used to pop-and-discard the first such entry), so those
        # events are dropped at the source instead of parked in the queue.
        # Observable behavior is identical; the queue stays dramatically
        # smaller, because most hazard delays (hours to years, per tier
        # rate) overshoot the horizon.
        if time < self._horizon:
            self._queue_push(time, kind, payload)

    def _seed_events(self) -> None:
        for collection in self.workload:
            if collection.submit_time < self.config.horizon:
                self._push(collection.submit_time, "submit", collection)
        # Machine maintenance: Poisson(~1/month) per machine.
        rate = self.config.machine_downtime_per_month / (30 * 24 * HOUR_SECONDS)
        if rate > 0:
            for machine in self.machines:
                t = float(self._rng_machine.exponential(1.0 / rate))
                while t < self.config.horizon:
                    self._push(t, "machine_down", machine)
                    t += self.config.machine_downtime_duration
                    t += float(self._rng_machine.exponential(1.0 / rate))
        # Correlated fault schedule (rack/power crashes, maintenance
        # windows, rolling upgrades) — only when configured.
        if self.config.faults is not None:
            schedule = generate_fault_schedule(
                self.config.faults, self._fault_domains,
                self.config.horizon, self._rng_faults)
            for fault in schedule:
                self._push(fault.time, "fault", fault)

    # ------------------------------------------------------------------- run

    def run(self) -> CellResult:
        """Execute the cell simulation and return its result."""
        # The run allocates hundreds of thousands of interlinked objects
        # (events, instances, heap entries) that all stay reachable until
        # the result is returned, so cyclic-GC passes during the loop are
        # pure overhead — they scan an ever-growing live graph and free
        # nothing.  Collection is deferred, not skipped: anything garbage
        # is reclaimed at the caller's next GC once this returns.
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            with obs.span("sim.run"):
                return self._run()
        finally:
            if was_enabled:
                gc.enable()

    def _run(self) -> CellResult:
        with obs.span("sim.seed_events"):
            self._seed_events()
        horizon = self.config.horizon
        handlers = {
            "submit": self._on_submit,
            "enable": self._on_enable,
            "round": self._on_round,
            "batch_check": self._on_batch_check,
            "collection_end": self._on_collection_end,
            "evict": self._on_evict_hazard,
            "restart": self._on_restart_hazard,
            "machine_down": self._on_machine_down,
            "machine_up": self._on_machine_up,
            "collection_timeout": self._on_collection_timeout,
            "fault": self._on_fault,
            "resubmit": self._on_resubmit,
        }
        # Counter handles are bound once so the hot loop pays one integer
        # add per event, not a registry lookup (instrumentation overhead
        # is budgeted at <= 5% of simulator throughput).
        events_processed = obs.counter("sim.events_processed")
        kind_counters = {kind: obs.counter("sim.events." + kind)
                         for kind in handlers}
        recorder = self.recorder
        # _push drops anything at or past the horizon, so the loop drains
        # the queue to empty — no boundary check per event.  Exhaustion
        # is signalled by pop() raising IndexError rather than a truth
        # test per iteration (zero-cost try in 3.11).
        queue = self._queue
        pop = queue.pop
        with obs.span("sim.event_loop"):
            if recorder is None:
                # One dict probe per event: the handler and its per-kind
                # tally share a slot, and both tallies flush into the
                # obs counters once after the loop (identical totals).
                dispatch = {kind: [handler, 0]
                            for kind, handler in handlers.items()}
                n_events = 0
                while True:
                    try:
                        time, _, kind, payload = pop()
                    except IndexError:
                        break
                    n_events += 1
                    entry = dispatch[kind]
                    entry[1] += 1
                    entry[0](time, payload)
                events_processed.inc(n_events)
                for kind, entry in dispatch.items():
                    kind_counters[kind].inc(entry[1])
            else:
                # Flight-recorder variant: counters stay live because
                # recorder frames sample them mid-run.
                while queue:
                    time, _, kind, payload = pop()
                    # Sampled *before* the boundary-crossing event runs,
                    # so a frame at t=k·interval holds exactly the state
                    # of all events strictly before it.
                    if time >= recorder.next_due:
                        recorder.tick(time)
                    events_processed.inc()
                    kind_counters[kind].inc()
                    handlers[kind](time, payload)
        with obs.span("sim.finalize"):
            self._finalize(horizon)
            usage = self._usage.finalize(self._rng_usage)
        with obs.span("sim.reconcile_usage"):
            _reconcile_machine_usage(usage, self.fleet,
                                     self.config.sample_period)
        self._export_obs_counters(usage)
        if recorder is not None:
            # Trailing boundaries (hours after the last event) repeat the
            # closing state; the horizon frame carries the full exported
            # cell counters.
            recorder.finish(horizon)
        return CellResult(
            config=self.config,
            machines=self.machines,
            collections=list(self._collections.values()),
            events=self.events,
            usage=usage,
            counters=self.counters,
        )

    def _export_obs_counters(self, usage: Dict[str, np.ndarray]) -> None:
        """Publish the run's integrity counters into the obs registry."""
        registry = obs.get_registry()
        for name, value in vars(self.counters).items():
            registry.inc("sim." + name, value)
        registry.inc("sim.usage_rows", len(usage["window_start"]))
        registry.gauge("sim.machines", len(self.machines))
        registry.gauge("sim.machines_up", self.fleet.up_count())
        registry.gauge("sim.collections", len(self._collections))

    # -------------------------------------------------------------- handlers

    def _on_submit(self, t: float, collection: Collection) -> None:
        self._collections[collection.collection_id] = collection
        self._deps.register(collection)
        if collection.is_alloc_set:
            self.counters.alloc_sets_submitted += 1
        else:
            self.counters.jobs_submitted += 1
        self.counters.tasks_created += collection.num_instances
        self.events.collection(t, collection, EventType.SUBMIT)
        for instance in collection.instances:
            self.events.instance(t, instance, EventType.SUBMIT, is_new=True)

        use_batch_queue = (
            self.config.batch_queueing
            and collection.scheduler is SchedulerKind.BATCH
            and not collection.is_alloc_set
        )
        if use_batch_queue:
            self.counters.batch_queued += 1
            self.events.collection(t, collection, EventType.QUEUE)
            for instance in collection.instances:
                instance.state = InstanceState.QUEUED
            self._batch.enqueue(collection)
            self._ensure_batch_check(t)
        else:
            self._enable(t, collection, log_event=False)

    def _ensure_batch_check(self, t: float) -> None:
        if not self._batch_check_scheduled:
            self._batch_check_scheduled = True
            self._push(t + self.config.batch.check_interval, "batch_check", None)

    def _on_batch_check(self, t: float, _payload) -> None:
        self._batch_check_scheduled = False
        for collection in self._batch.admit_ready():
            self._batch_admitted.add(collection.collection_id)
            self._enable(t, collection, log_event=True)
        if len(self._batch):
            self._ensure_batch_check(t)

    def _on_enable(self, t: float, collection: Collection) -> None:
        self._enable(t, collection, log_event=True)

    def _enable(self, t: float, collection: Collection, log_event: bool) -> None:
        if collection.is_done:
            return
        collection.enable_time = t
        if log_event:
            self.events.collection(t, collection, EventType.ENABLE)
        # A job that never manages to start is eventually abandoned by its
        # user; without this, admitted-but-unplaceable work would hold the
        # batch budget forever.
        self._push(t + max(1.5 * collection.planned_duration, 1800.0),
                   "collection_timeout", collection)
        for instance in collection.instances:
            if instance.state in (InstanceState.SUBMITTED, InstanceState.QUEUED):
                instance.state = InstanceState.PENDING
                instance.pending_since = t
                self._pending.push(instance)
        self._ensure_round(t)

    def _ensure_round(self, t: float) -> None:
        if not self._round_scheduled and (len(self._pending) or len(self._parked)):
            self._round_scheduled = True
            interval = self.config.scheduler.round_interval
            next_round = (int(t / interval) + 1) * interval
            self._push(next_round, "round", None)

    def _on_round(self, t: float, _payload) -> None:
        with obs.span("sim.round"):
            self._round(t)

    def _round(self, t: float) -> None:
        self._round_scheduled = False
        with obs.span("sim.round.admit"):
            self._pending.remove_dead()
            if self._parked and t >= self._parked_retry_at:
                self._parked_retry_at = t + self._parked_retry_interval
                self._parked.remove_dead()
                for instance in self._parked.pop_batch(len(self._parked)):
                    self._pending.push(instance)
            obs.gauge("sim.queue.pending_depth", len(self._pending))
            obs.gauge("sim.queue.parked_depth", len(self._parked))
            obs.observe("sim.queue.pending_depth_dist", len(self._pending))
            batch = self._pending.pop_batch(self.config.scheduler.round_capacity)
        with obs.span("sim.round.place"):
            self._place_batch(t, batch)

    def _place_batch(self, t: float, batch: List[Instance]) -> None:
        deferred: List[Instance] = []
        # Failure-dominance pruning: within one round resources only
        # shrink, so a request at least as large (on both dimensions) as
        # one that already failed cannot fit either — skip the scan.
        # Preempting tiers get their own cache since they can make room.
        failed: Dict[Tuple[bool, str], Tuple[float, float]] = {}
        progressed = False
        preempting_tiers = self.config.preempting_tiers
        for instance in batch:
            collection = instance.collection
            if (collection.end_reason is not None
                    or instance.state is not InstanceState.PENDING):
                continue
            preempts = collection.tier in preempting_tiers
            cache_key = (preempts, collection.constraint)
            f_cpu, f_mem = failed.get(cache_key, (float("inf"), float("inf")))
            req = instance.request
            if req.cpu >= f_cpu and req.mem >= f_mem:
                deferred.append(instance)
                continue
            if self._try_place(t, instance):
                progressed = True
            else:
                failed[cache_key] = (min(f_cpu, req.cpu), min(f_mem, req.mem))
                deferred.append(instance)
        for instance in deferred:
            self._parked.push(instance)
        # Event-driven retry: if this round placed nothing, re-running it
        # before any resources free again would do the same failing work
        # over; the next round is armed by whichever event frees capacity
        # (an instance stopping, a machine returning, a new enable).
        if progressed:
            self._ensure_round(t)

    # ------------------------------------------------------------- placement

    def _try_place(self, t: float, instance: Instance) -> bool:
        collection = instance.collection
        # Tasks targeted at an alloc set go inside a live alloc instance.
        if (not instance.is_alloc_instance
                and collection.alloc_collection_id is not None):
            host = self._find_alloc_room(collection.alloc_collection_id, instance.request)
            if host is not None:
                self._start_in_alloc(t, instance, host)
                return True
            # No alloc room (alloc set still pending, or full): fall through
            # to direct machine placement, as Borg does.

        machine = self._policy.find_machine(self.fleet, instance.request,
                                            instance.constraint)
        if machine is None and instance.tier in self.config.preempting_tiers:
            found = self._policy.find_preemption(
                self.fleet, instance.request, instance.tier.rank,
                instance.constraint,
            )
            if found is not None:
                machine, victims = found
                for victim in victims:
                    self.counters.preemption_victims += 1
                    self._evict_instance(t, victim)
        if machine is None:
            return False
        machine.place(instance)
        self._start_running(t, instance, machine.machine_id)
        return True

    def _find_alloc_room(self, alloc_collection_id: int,
                         request: Resources) -> Optional[Instance]:
        alloc_set = self._collections.get(alloc_collection_id)
        if alloc_set is None or alloc_set.is_done:
            return None
        for alloc_instance in alloc_set.instances:
            if (alloc_instance.state is InstanceState.RUNNING
                    and request.fits_in(alloc_instance.available_in_alloc())):
                return alloc_instance
        return None

    def _start_in_alloc(self, t: float, instance: Instance, host: Instance) -> None:
        host.claimed = host.claimed + instance.request
        instance.alloc_instance = host
        self._alloc_tenants.setdefault(host.instance_id, []).append(instance)
        self._start_running(t, instance, host.machine_id)

    def _start_running(self, t: float, instance: Instance, machine_id: int) -> None:
        instance.state = InstanceState.RUNNING
        instance.start_time = t
        instance.machine_id = machine_id
        instance.n_schedules += 1
        instance.incarnation += 1
        is_new = instance.n_schedules == 1
        self.counters.schedule_events += 1
        if not is_new:
            self.counters.reschedule_events += 1
        self.events.instance(t, instance, EventType.SCHEDULE,
                             machine_id=machine_id, is_new=is_new)

        collection = instance.collection
        if collection.first_running_time is None:
            collection.first_running_time = t
            # The collection's planned lifetime starts with its first
            # running task (services run until ended; batch work runs for
            # its drawn duration).
            self._push(t + collection.planned_duration, "collection_end", collection)

        self._arm_hazards(t, instance)

    def _hazard_cap(self, collection: Collection) -> float:
        """Latest time a hazard for ``collection`` can still do anything.

        The collection's end event is already scheduled (hazards are only
        armed after the first instance runs) and its lifetime is never
        extended, so a hazard firing at or after that end — or at/after
        the horizon — is guaranteed to find the instance dead (or the
        run over) and no-op.  At the exact end time the end event wins
        the tie: it was pushed earlier, so it carries the lower seq.
        Dropping those pushes changes no trace bytes and no RNG draws
        (the delay is drawn before the cap check; stale hazard handlers
        return before touching any RNG stream).
        """
        end = collection.first_running_time + collection.planned_duration
        return end if end < self._horizon else self._horizon

    def _arm_hazards(self, t: float, instance: Instance) -> None:
        collection = instance.collection
        cap = self._hazard_cap(collection)
        scale = self._evict_scale.get(collection.tier.rank)
        if scale is not None:
            delay = float(self._hazard_exp(scale))
            if t + delay < cap:
                self._push(t + delay, "evict", (instance, instance.incarnation))
        if self._restart_scale and not instance.is_alloc_instance:
            delay = float(self._hazard_exp(self._restart_scale))
            if t + delay < cap:
                self._push(t + delay, "restart", (instance, instance.incarnation))

    # ------------------------------------------------------------ stop paths

    def _stop_run(self, t: float, instance: Instance) -> None:
        """Close the current run: bookkeeping + usage samples."""
        machine_id = instance.machine_id
        start = instance.start_time
        if start is None or machine_id is None:
            raise SimulationError(f"stopping non-running instance {instance.instance_id}")
        if instance.alloc_instance is not None:
            host = instance.alloc_instance
            host.claimed = host.claimed - instance.request
            tenants = self._alloc_tenants.get(host.instance_id)
            if tenants and instance in tenants:
                tenants.remove(instance)
            instance.alloc_instance = None
        else:
            machine = self.machines_by_id[machine_id]
            if instance in machine.instances:
                machine.remove(instance)
        instance.record_stop(t)
        instance.incarnation += 1
        self._emit_usage(instance, start, t, machine_id)

    def _emit_usage(self, instance: Instance, start: float, end: float,
                    machine_id: int) -> None:
        """Queue the closed run interval for batched sample generation.

        Only scalars are captured here; the actual sampling happens in
        one vectorized pass at finalize (``UsageBatch``), drawing from
        the dedicated usage RNG stream in this same interval order.
        """
        if end <= start:
            return
        collection = instance.collection
        # The packed tier code is the tier's rank (TIER_CODES is defined
        # that way), so the hot path reads the plain .rank attribute
        # instead of hashing an enum member per interval.
        if instance.is_alloc_instance:
            # Alloc instances are reservations: they contribute allocation
            # (their limit) but no usage of their own — usage comes from
            # the tenant tasks scheduled inside them, which are sampled on
            # the same machine.  Emitting usage here would double-count.
            self._usage.add_alloc(
                collection_id=collection.collection_id,
                instance_index=instance.index,
                machine_id=machine_id,
                tier_code=collection.tier.rank,
                autopilot_code=AUTOPILOT_CODES[collection.autopilot_mode],
                start=start, end=end,
                cpu_limit=instance.request.cpu,
                mem_limit=instance.request.mem,
            )
            return
        self._usage.add_task(
            collection_id=collection.collection_id,
            instance_index=instance.index,
            machine_id=machine_id,
            tier_code=collection.tier.rank,
            autopilot_code=AUTOPILOT_CODES[collection.autopilot_mode],
            in_alloc=collection.alloc_collection_id is not None,
            start=start, end=end,
            cpu_limit=instance.request.cpu,
            mem_limit=instance.request.mem,
            cpu_fraction=collection.cpu_usage_fraction,
            mem_fraction=collection.mem_usage_fraction,
        )

    def _evict_instance(self, t: float, instance: Instance) -> None:
        """Infrastructure eviction: stop, log EVICT, requeue for placement."""
        if instance.state is not InstanceState.RUNNING:
            return
        # Evicting an alloc instance first evicts its tenants.
        if instance.is_alloc_instance:
            for tenant in list(self._alloc_tenants.get(instance.instance_id, [])):
                self._evict_instance(t, tenant)
        machine_id = instance.machine_id
        self._stop_run(t, instance)
        instance.n_evictions += 1
        self.counters.evictions += 1
        self.events.instance(t, instance, EventType.EVICT, machine_id=machine_id,
                             is_new=False)
        instance.state = InstanceState.PENDING
        instance.pending_since = t
        self.events.instance(t, instance, EventType.SUBMIT, is_new=False)
        self._pending.push(instance)
        self._ensure_round(t)

    def _on_evict_hazard(self, t: float, payload) -> None:
        instance, incarnation = payload
        if (instance.incarnation != incarnation
                or instance.state is not InstanceState.RUNNING
                or instance.collection.end_reason is not None):
            return
        self._evict_instance(t, instance)

    def _on_restart_hazard(self, t: float, payload) -> None:
        # The hottest handler at paper scale (~30% of all events are
        # crash-loop fires): collection fetched once, is_done spelled as
        # the raw end_reason test, the hazard cap inlined, and the
        # three-event record emitted through the shared-read fast path.
        # RNG draw order and the event-record bytes are unchanged.
        instance, incarnation = payload
        collection = instance.collection
        if (instance.incarnation != incarnation
                or instance.state is not InstanceState.RUNNING
                or collection.end_reason is not None):
            return
        # A task-level crash: the incarnation FAILs and is rescheduled.
        machine_id = instance.machine_id
        counters = self.counters
        counters.task_restarts += 1
        if self._hazard_random() < 0.10:
            # Occasionally the restart lands elsewhere: full stop + requeue.
            self.events.instance(t, instance, EventType.FAIL,
                                 machine_id=machine_id, is_new=False)
            self._stop_run(t, instance)
            instance.state = InstanceState.PENDING
            instance.pending_since = t
            self.events.instance(t, instance, EventType.SUBMIT, is_new=False)
            self._pending.push(instance)
            self._ensure_round(t)
            return
        # The common crash-loop case: the local agent restarts the task in
        # place within seconds.  Modeled as a logical restart — new SUBMIT
        # and SCHEDULE events (the figure 9 "churn"), same machine, run
        # interval uninterrupted.
        instance.n_schedules += 1
        counters.schedule_events += 1
        counters.reschedule_events += 1
        self.events.crash_loop(t, instance, machine_id)
        restart_scale = self._restart_scale
        if restart_scale:
            delay = float(self._hazard_exp(restart_scale))
            fire = t + delay
            end = collection.first_running_time + collection.planned_duration
            cap = end if end < self._horizon else self._horizon
            if fire < cap:
                self._push(fire, "restart", (instance, incarnation))

    def _on_machine_down(self, t: float, machine: Machine) -> None:
        if not machine.up:
            return
        self.counters.machine_downtimes += 1
        machine.up = False
        self.events.machine(t, machine.machine_id, "REMOVE",
                            machine.capacity.cpu, machine.capacity.mem)
        for instance in list(machine.instances):
            if instance.tier in self.config.preempting_tiers:
                # Maintenance is planned: production work is *drained* —
                # migrated ahead of the outage rather than evicted.  This
                # is Borg's eviction-rate SLO protecting important
                # collections (section 5.2: <0.2% of prod collections ever
                # see an eviction despite ~1 maintenance/machine/month).
                self._drain_instance(t, instance)
            else:
                self._evict_instance(t, instance)
        self._push(t + self.config.machine_downtime_duration, "machine_up", machine)

    def _drain_instance(self, t: float, instance: Instance) -> None:
        """Gracefully migrate an instance off its machine (no EVICT)."""
        if instance.state is not InstanceState.RUNNING:
            return
        if instance.is_alloc_instance:
            for tenant in list(self._alloc_tenants.get(instance.instance_id, [])):
                self._drain_instance(t, tenant)
        self._stop_run(t, instance)
        instance.state = InstanceState.PENDING
        instance.pending_since = t
        self.events.instance(t, instance, EventType.SUBMIT, is_new=False)
        self._pending.push(instance)
        self._ensure_round(t)

    def _on_machine_up(self, t: float, machine: Machine) -> None:
        machine.up = True
        self.events.machine(t, machine.machine_id, "ADD",
                            machine.capacity.cpu, machine.capacity.mem)
        self._ensure_round(t)

    def _on_fault(self, t: float, fault: FaultEvent) -> None:
        """A correlated outage: a rack or power domain goes down at once.

        Planned outages (maintenance windows, rolling upgrades) drain
        production work like baseline per-machine maintenance; unplanned
        crashes evict *everything* — a dead switch does not honor the
        eviction SLO.  Machines already down (overlapping outage) are
        skipped, mirroring :meth:`_on_machine_down`; their earlier
        ``machine_up`` event still governs their return.
        """
        self.counters.fault_events += 1
        planned = fault.kind != "crash"
        for index in fault.machine_indices:
            machine = self.machines[index]
            if not machine.up:
                continue
            self.counters.fault_machine_outages += 1
            machine.up = False
            self.events.machine(t, machine.machine_id, "REMOVE",
                                machine.capacity.cpu, machine.capacity.mem)
            for instance in list(machine.instances):
                if planned and instance.tier in self.config.preempting_tiers:
                    self._drain_instance(t, instance)
                else:
                    self._evict_instance(t, instance)
            self._push(t + fault.duration, "machine_up", machine)

    # --------------------------------------------------------- terminations

    def _on_collection_end(self, t: float, collection: Collection) -> None:
        if collection.is_done:
            return
        self._terminate_collection(t, collection, collection.planned_end)

    def _on_collection_timeout(self, t: float, collection: Collection) -> None:
        """User gives up on a job that never started running."""
        if collection.is_done or collection.first_running_time is not None:
            return
        self._terminate_collection(t, collection, EndReason.KILL)

    def _terminate_collection(self, t: float, collection: Collection,
                              reason: EndReason) -> None:
        collection.end_reason = reason
        collection.end_time = t
        event = _END_EVENT[reason]
        for instance in collection.instances:
            if instance.state is InstanceState.RUNNING:
                machine_id = instance.machine_id
                self._stop_run(t, instance)
                self.events.instance(t, instance, event, machine_id=machine_id,
                                     is_new=False)
            elif instance.state is not InstanceState.DEAD:
                self.events.instance(t, instance, event, is_new=False)
            instance.state = InstanceState.DEAD
            instance.end_reason = reason
        self.events.collection(t, collection, event)
        if collection.collection_id in self._batch_admitted:
            self._batch_admitted.discard(collection.collection_id)
            self._batch.release(collection)
        # The termination freed capacity: let waiting work try again.
        self._ensure_round(t)
        # Failed jobs come back: users and frameworks retry with backoff
        # (fault injection only; never triggers for KILL/FINISH/EVICT).
        if (self._resubmit_policy is not None and reason is EndReason.FAIL
                and not collection.is_alloc_set):
            self._maybe_resubmit(t, collection)
        # Dependency cascade: children are killed when the parent exits.
        for child in self._deps.on_termination(collection):
            self.counters.cascade_kills += 1
            self._terminate_collection(t, child, EndReason.KILL)

    # --------------------------------------------------------- resubmission

    def _maybe_resubmit(self, t: float, collection: Collection) -> None:
        """Schedule a failed job's resubmission, if its chain/budget allow.

        Pure bookkeeping — no RNG: the backoff is the policy's
        deterministic bounded-exponential schedule, so per-chain delays
        strictly increase up to the cap (a property the event-invariant
        suite verifies from the log alone).
        """
        policy = self._resubmit_policy
        root_id, attempts = self._resubmit_meta.get(
            collection.collection_id, (collection.collection_id, 0))
        attempt = attempts + 1
        if attempt > policy.max_attempts:
            self.counters.resubmit_chain_exhausted += 1
            return
        left = self._user_retry_left.setdefault(collection.user,
                                                policy.user_retry_budget)
        if left <= 0:
            self.counters.resubmit_budget_exhausted += 1
            return
        self._user_retry_left[collection.user] = left - 1
        delay = policy.delay(attempt)
        self._push(t + delay, "resubmit", (collection, root_id, attempt, delay))

    def _on_resubmit(self, t: float, payload) -> None:
        """Re-enter a failed job as a fresh collection (new id, new SUBMIT).

        That is how the real trace shows resubmissions — repeated
        near-identical collections from the same user; the
        :class:`~repro.sim.events.ResubmitEvent` side stream carries the
        chain provenance analyses need.
        """
        failed, root_id, attempt, delay = payload
        policy = self._resubmit_policy
        # Crash loops: most retries of a genuinely broken job fail again.
        refail = bool(self._rng_resubmit.random() < policy.refail_prob)
        clone = Collection(
            collection_id=next(self._resubmit_ids),
            collection_type=CollectionType.JOB,
            priority=failed.priority,
            tier=failed.tier,
            user=failed.user,
            submit_time=t,
            scheduler=failed.scheduler,
            alloc_collection_id=failed.alloc_collection_id,
            autopilot_mode=failed.autopilot_mode,
            constraint=failed.constraint,
            planned_duration=failed.planned_duration,
            planned_end=EndReason.FAIL if refail else EndReason.FINISH,
            cpu_usage_fraction=failed.cpu_usage_fraction,
            mem_usage_fraction=failed.mem_usage_fraction,
        )
        for index, instance in enumerate(failed.instances):
            clone.instances.append(Instance(
                collection=clone, index=index, request=instance.request,
            ))
        self._resubmit_meta[clone.collection_id] = (root_id, attempt)
        self.counters.resubmissions += 1
        self.events.resubmit(t, clone.collection_id, failed.collection_id,
                             root_id, attempt, delay, clone.user,
                             clone.tier._value_)
        self._on_submit(t, clone)

    def _finalize(self, horizon: float) -> None:
        """Close run intervals of instances still running at the horizon.

        No termination events are logged for them — like the real trace,
        work still running when the observation window closes is
        right-censored.
        """
        for collection in self._collections.values():
            for instance in collection.instances:
                if instance.state is InstanceState.RUNNING:
                    self._stop_run(horizon, instance)
