"""Machines: heterogeneous capacity, allocation accounting, over-commit.

A machine tracks the sum of schedule-time limits of the instances placed
on it.  Borg over-commits: the admission check allows the allocated sum
to exceed physical capacity by a per-tier over-commit factor, betting
that instances under-use their limits (paper section 4, figure 4).
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.entities import Instance
from repro.sim.resources import Resources
from repro.util.errors import SimulationError

_res = Resources.unchecked


class Machine:
    """One node of a cell."""

    # Same rationale as the entity dataclasses: thousands of machines,
    # attribute reads on every placement and sync.
    __slots__ = ("machine_id", "capacity", "platform", "utc_offset_hours",
                 "_up", "allocated", "instances", "_fleet", "_fleet_index")

    def __init__(self, machine_id: int, capacity: Resources,
                 platform: str = "default", utc_offset_hours: float = 0.0):
        self.machine_id = machine_id
        self.capacity = capacity
        self.platform = platform
        self.utc_offset_hours = utc_offset_hours
        self._up = True
        self.allocated = Resources.ZERO
        #: Insertion-ordered (dict-as-set): iteration order must be
        #: deterministic — a real set would iterate by object address and
        #: make eviction order differ between identical runs.
        self.instances: Dict[Instance, None] = {}
        # The attached FleetState (if any) mirrors this machine's
        # allocation and up/down state in its columnar arrays.
        self._fleet = None
        self._fleet_index = -1

    @property
    def up(self) -> bool:
        return self._up

    @up.setter
    def up(self, value: bool) -> None:
        self._up = bool(value)
        if self._fleet is not None:
            self._fleet.sync_up(self._fleet_index, self._up)

    def attach_fleet(self, fleet, index: int) -> None:
        """Bind this machine to a :class:`~repro.sim.fleet.FleetState` slot."""
        self._fleet = fleet
        self._fleet_index = index

    def _sync_allocated(self) -> None:
        if self._fleet is not None:
            self._fleet.sync_allocated(self._fleet_index,
                                       self.allocated.cpu, self.allocated.mem)

    def __repr__(self) -> str:
        return (f"Machine({self.machine_id}, cap=({self.capacity.cpu:.2f},"
                f" {self.capacity.mem:.2f}), alloc=({self.allocated.cpu:.2f},"
                f" {self.allocated.mem:.2f}), n={len(self.instances)})")

    # -- admission ----------------------------------------------------------------

    def admission_capacity(self, overcommit: float) -> Resources:
        """Capacity inflated by the over-commit factor for admission checks."""
        if overcommit < 1.0:
            raise SimulationError(f"overcommit factor must be >= 1, got {overcommit}")
        return self.capacity * overcommit

    def fits(self, request: Resources, overcommit: float = 1.0) -> bool:
        """Can ``request`` be admitted under the given over-commit factor?"""
        if not self.up:
            return False
        return (self.allocated + request).fits_in(self.admission_capacity(overcommit))

    def headroom(self, overcommit: float = 1.0) -> Resources:
        """Remaining admittable resources."""
        return self.admission_capacity(overcommit) - self.allocated

    # -- placement ----------------------------------------------------------------

    def place(self, instance: Instance) -> None:
        if not self.up:
            raise SimulationError(f"placing on down machine {self.machine_id}")
        if instance in self.instances:
            raise SimulationError(
                f"instance {instance.instance_id} already on machine {self.machine_id}"
            )
        self.instances[instance] = None
        # Inlined ``allocated + request`` plus the fleet sync: one
        # Resources construction and no re-reads, same float operations
        # (and clamping on the remove side) as the operators.
        alloc = self.allocated
        request = instance.request
        cpu = alloc.cpu + request.cpu
        mem = alloc.mem + request.mem
        self.allocated = _res(cpu, mem)
        fleet = self._fleet
        if fleet is not None:
            fleet.sync_allocated(self._fleet_index, cpu, mem)

    def remove(self, instance: Instance) -> None:
        if instance not in self.instances:
            raise SimulationError(
                f"instance {instance.instance_id} not on machine {self.machine_id}"
            )
        del self.instances[instance]
        alloc = self.allocated
        request = instance.request
        # Same tiny-negative-residue clamp as Resources.__sub__.
        cpu = max(0.0, alloc.cpu - request.cpu)
        mem = max(0.0, alloc.mem - request.mem)
        self.allocated = _res(cpu, mem)
        fleet = self._fleet
        if fleet is not None:
            fleet.sync_allocated(self._fleet_index, cpu, mem)

    # -- preemption support ----------------------------------------------------------

    def preemptible_below(self, rank: int) -> List[Instance]:
        """Instances whose tier rank is strictly below ``rank``, largest first.

        Ordering by descending request size frees the most resources with
        the fewest evictions, which is what a real preemption pass aims
        for.
        """
        victims = [i for i in self.instances if i.tier.rank < rank]
        victims.sort(key=lambda i: (i.tier.rank,
                                    -(i.request.cpu + i.request.mem),
                                    i.instance_id))
        return victims

    def allocation_ratio(self) -> Dict[str, float]:
        """allocated / capacity per dimension (over-commit diagnostics)."""
        return {
            "cpu": self.allocated.cpu / self.capacity.cpu if self.capacity.cpu > 0 else 0.0,
            "mem": self.allocated.mem / self.capacity.mem if self.capacity.mem > 0 else 0.0,
        }
