"""Priorities and tiers, for both trace generations (paper section 2).

The 2019 trace exposes raw priorities 0-450; the 2011 trace mapped the
unique priority values to bands 0-11.  Both map onto the same five
tiers; per the paper we merge the small monitoring tier into production
for the analyses.

2019 bands: free <= 99, best-effort batch 110-115, mid 116-119,
production 120-359, monitoring >= 360.
2011 bands: free 0-1, best-effort batch 2-8, production 9-10,
monitoring 11 (no mid tier existed).
"""

from __future__ import annotations

import enum
from typing import Tuple


class Tier(enum.Enum):
    """The paper's priority tiers, ordered from weakest to strongest."""

    FREE = "free"
    BEB = "beb"
    MID = "mid"
    PROD = "prod"
    MONITORING = "monitoring"

    #: Preemption strength: higher ranks may evict lower ones.  Bound as
    #: a plain per-member attribute below rather than a property: the
    #: scheduler reads ``.rank`` on every queue push and preemption
    #: check, and a property costs a descriptor call plus an enum-keyed
    #: dict hash (both Python-level) per access.
    rank: int

    @property
    def label(self) -> str:
        """Display label used in figures ('free tier', 'beb tier', ...)."""
        return f"{self.value} tier"


_RANKS = {
    Tier.FREE: 0,
    Tier.BEB: 1,
    Tier.MID: 2,
    Tier.PROD: 3,
    Tier.MONITORING: 4,
}
for _tier, _rank in _RANKS.items():
    _tier.rank = _rank
del _tier, _rank

#: Analysis ordering (paper figures stack free -> beb -> mid -> prod, with
#: monitoring merged into prod).
TIERS: Tuple[Tier, ...] = (Tier.FREE, Tier.BEB, Tier.MID, Tier.PROD)

#: The twelve raw priority values present in the 2011 trace, in band order
#: (band i had raw priority _PRIORITIES_2011[i]).
RAW_PRIORITIES_2011: Tuple[int, ...] = (0, 25, 100, 101, 103, 104, 107, 109, 119, 200, 360, 450)


def tier_of_priority_2019(priority: int) -> Tier:
    """Map a raw 2019 priority (0-450) to its tier."""
    if priority < 0 or priority > 450:
        raise ValueError(f"2019 priorities are 0-450, got {priority}")
    if priority <= 99:
        return Tier.FREE
    if priority <= 115:
        # The trace documentation places 100-109 with batch-adjacent
        # workloads; the paper's banding assigns 110-115 to beb and keeps
        # 100-109 in free (<=99 strictly, then a gap).  We follow the
        # paper text exactly: free is <= 99; 100-109 is treated as beb.
        return Tier.BEB
    if priority <= 119:
        return Tier.MID
    if priority <= 359:
        return Tier.PROD
    return Tier.MONITORING


def tier_of_priority_2011(band: int) -> Tier:
    """Map a 2011 priority band (0-11) to its tier."""
    if band < 0 or band > 11:
        raise ValueError(f"2011 priority bands are 0-11, got {band}")
    if band <= 1:
        return Tier.FREE
    if band <= 8:
        return Tier.BEB
    if band <= 10:
        return Tier.PROD
    return Tier.MONITORING


def priority_for_tier_2019(tier: Tier) -> int:
    """A representative raw 2019 priority for a tier (workload generation)."""
    return {
        Tier.FREE: 25,
        Tier.BEB: 115,
        Tier.MID: 118,
        Tier.PROD: 200,
        Tier.MONITORING: 400,
    }[tier]


def priority_for_tier_2011(tier: Tier) -> int:
    """A representative 2011 priority band for a tier."""
    return {
        Tier.FREE: 0,
        Tier.BEB: 4,
        Tier.MID: 8,  # no mid tier existed in 2011; nearest band is top beb
        Tier.PROD: 9,
        Tier.MONITORING: 11,
    }[tier]


def merge_monitoring(tier: Tier) -> Tier:
    """Fold the monitoring tier into production, as the paper does."""
    return Tier.PROD if tier is Tier.MONITORING else tier
