"""Parent-child job dependencies (paper sections 3 and 5.2).

If a Borg job has a parent job, the child is killed automatically when
its parent terminates — the MapReduce controller/worker cleanup pattern.
The paper shows this mechanism explains much of the "high failure rate"
earlier studies read into the 2011 trace: 87% of jobs with a parent end
in a kill, versus 41% of parentless jobs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.sim.entities import Collection


class DependencyManager:
    """Tracks the parent -> children relation and cascade kills."""

    def __init__(self):
        self._children: Dict[int, List[Collection]] = {}

    def register(self, collection: Collection) -> None:
        """Record ``collection`` under its parent, if it has one."""
        if collection.parent_id is None:
            return
        self._children.setdefault(collection.parent_id, []).append(collection)

    def children_of(self, collection_id: int) -> List[Collection]:
        return list(self._children.get(collection_id, []))

    def on_termination(self, collection: Collection) -> List[Collection]:
        """Collections to cascade-kill because ``collection`` terminated.

        Returns only children that are still alive; grandchildren are
        handled by the caller re-invoking this as each child dies, so a
        whole tree unwinds through repeated calls.
        """
        kids = self._children.pop(collection.collection_id, [])
        return [c for c in kids if not c.is_done]
