"""Explainable scheduling (paper section 10, research direction 1).

"It would be nice to be able to provide explanations for why the
scheduler made the decisions it made — either to help system operators
understand what is going on, or to provide guidance to end users on how
they could better use the cluster."

This module answers, for a given request against a fleet snapshot:
which machines admit it, why each of the others rejects it (down /
CPU-bound / memory-bound / both), whether preemption could make room and
at what cost, and — if nothing works — what the user could change
(smaller request, higher tier) to get placed.  It is a diagnostic
companion to :class:`~repro.sim.scheduler.PlacementPolicy`: same
admission arithmetic, exhaustive instead of sampled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.entities import Instance
from repro.sim.machine import Machine
from repro.sim.priority import Tier
from repro.sim.resources import Resources
from repro.sim.scheduler import SchedulerParams


class Verdict(enum.Enum):
    """Why one machine does (not) host the request."""

    FITS = "fits"
    MACHINE_DOWN = "machine down"
    CPU_BOUND = "insufficient CPU headroom"
    MEM_BOUND = "insufficient memory headroom"
    CPU_AND_MEM_BOUND = "insufficient CPU and memory headroom"
    TOO_SMALL = "machine smaller than the request"
    CONSTRAINT_MISMATCH = "platform does not satisfy the constraint"
    PREEMPTIBLE = "fits after preempting lower-tier work"


@dataclass(frozen=True)
class MachineVerdict:
    """One machine's assessment."""

    machine_id: int
    verdict: Verdict
    #: Admission headroom (over-commit applied) at assessment time.
    headroom_cpu: float
    headroom_mem: float
    #: Best-fit score when the machine fits (smaller = tighter).
    score: Optional[float] = None
    #: Victims that would free enough room, when verdict is PREEMPTIBLE.
    victims: Tuple[Tuple[int, int], ...] = ()


@dataclass
class PlacementExplanation:
    """The full decision record for one request."""

    request: Resources
    tier: Tier
    verdicts: List[MachineVerdict]
    chosen_machine_id: Optional[int]
    preemption_considered: bool

    @property
    def placeable(self) -> bool:
        return self.chosen_machine_id is not None

    def count(self, verdict: Verdict) -> int:
        return sum(1 for v in self.verdicts if v.verdict is verdict)

    def summary(self) -> Dict[str, int]:
        """Verdict histogram over the fleet."""
        out: Dict[str, int] = {}
        for v in self.verdicts:
            out[v.verdict.value] = out.get(v.verdict.value, 0) + 1
        return out

    def advice(self) -> List[str]:
        """Actionable guidance for the submitting user."""
        tips: List[str] = []
        if self.placeable:
            return tips
        n = len(self.verdicts)
        cpu_bound = self.count(Verdict.CPU_BOUND) + self.count(Verdict.CPU_AND_MEM_BOUND)
        mem_bound = self.count(Verdict.MEM_BOUND) + self.count(Verdict.CPU_AND_MEM_BOUND)
        too_small = self.count(Verdict.TOO_SMALL)
        if too_small == n:
            tips.append(
                "the request exceeds every machine in the cell: split the "
                "work across more, smaller tasks"
            )
            return tips
        if too_small > n // 2:
            tips.append(
                f"{too_small}/{n} machines are smaller than the request; "
                "a smaller per-task shape would open most of the cell"
            )
        mismatched = self.count(Verdict.CONSTRAINT_MISMATCH)
        if mismatched > n // 2:
            tips.append(
                f"the placement constraint rules out {mismatched}/{n} "
                "machines; dropping or widening it would open the cell"
            )
        if cpu_bound > mem_bound and cpu_bound > 0:
            tips.append("the cell is CPU-constrained right now: reducing the "
                        "CPU request would help most")
        elif mem_bound > 0:
            tips.append("the cell is memory-constrained right now: reducing "
                        "the memory request would help most")
        if not self.preemption_considered:
            tips.append("this tier cannot preempt; production-tier work "
                        "would be placed by evicting best-effort tasks")
        elif self.count(Verdict.PREEMPTIBLE) == 0:
            tips.append("even preemption cannot make room: the blocking "
                        "work is at equal or higher priority")
        tips.append("waiting will help: capacity frees as running work ends")
        return tips


def explain_placement(machines: Sequence[Machine], request: Resources,
                      tier: Tier, params: SchedulerParams,
                      preempting_tiers: Sequence[Tier] = (Tier.PROD,
                                                          Tier.MONITORING),
                      constraint: str = "",
                      ) -> PlacementExplanation:
    """Exhaustively assess ``request`` against every machine.

    Mirrors :class:`~repro.sim.scheduler.PlacementPolicy` admission arithmetic exactly, but
    scans the whole fleet and records *why* for each machine rather than
    stopping at the first fit.  Intended for operator/user diagnostics,
    not the scheduling hot path.
    """
    verdicts: List[MachineVerdict] = []
    best: Optional[Tuple[float, int]] = None
    considers_preemption = tier in preempting_tiers

    for machine in machines:
        cap = machine.capacity
        bound_cpu = cap.cpu * params.overcommit_cpu
        bound_mem = cap.mem * params.overcommit_mem
        headroom_cpu = bound_cpu - machine.allocated.cpu
        headroom_mem = bound_mem - machine.allocated.mem

        if not machine.up:
            verdicts.append(MachineVerdict(machine.machine_id,
                                           Verdict.MACHINE_DOWN,
                                           headroom_cpu, headroom_mem))
            continue
        if constraint and machine.platform != constraint:
            verdicts.append(MachineVerdict(machine.machine_id,
                                           Verdict.CONSTRAINT_MISMATCH,
                                           headroom_cpu, headroom_mem))
            continue
        if request.cpu > bound_cpu or request.mem > bound_mem:
            verdicts.append(MachineVerdict(machine.machine_id,
                                           Verdict.TOO_SMALL,
                                           headroom_cpu, headroom_mem))
            continue
        cpu_ok = request.cpu <= headroom_cpu + 1e-12
        mem_ok = request.mem <= headroom_mem + 1e-12
        if cpu_ok and mem_ok:
            score = max(
                (headroom_cpu - request.cpu) / max(cap.cpu, 1e-9),
                (headroom_mem - request.mem) / max(cap.mem, 1e-9),
            )
            verdicts.append(MachineVerdict(machine.machine_id, Verdict.FITS,
                                           headroom_cpu, headroom_mem,
                                           score=score))
            if best is None or score < best[0]:
                best = (score, machine.machine_id)
            continue

        # Doesn't fit as-is; could preemption free enough?
        victims = _preemption_plan(machine, request, tier, params)
        if considers_preemption and victims is not None:
            verdicts.append(MachineVerdict(
                machine.machine_id, Verdict.PREEMPTIBLE,
                headroom_cpu, headroom_mem,
                victims=tuple(v.instance_id for v in victims),
            ))
            continue
        if not cpu_ok and not mem_ok:
            verdict = Verdict.CPU_AND_MEM_BOUND
        elif not cpu_ok:
            verdict = Verdict.CPU_BOUND
        else:
            verdict = Verdict.MEM_BOUND
        verdicts.append(MachineVerdict(machine.machine_id, verdict,
                                       headroom_cpu, headroom_mem))

    chosen = best[1] if best is not None else None
    if chosen is None and considers_preemption:
        # Fall back to the cheapest preemption plan, like the scheduler.
        preemptibles = [v for v in verdicts if v.verdict is Verdict.PREEMPTIBLE]
        if preemptibles:
            chosen = min(preemptibles, key=lambda v: len(v.victims)).machine_id
    return PlacementExplanation(
        request=request, tier=tier, verdicts=verdicts,
        chosen_machine_id=chosen,
        preemption_considered=considers_preemption,
    )


def _preemption_plan(machine: Machine, request: Resources, tier: Tier,
                     params: SchedulerParams) -> Optional[List[Instance]]:
    """Victim set that would admit ``request`` on ``machine`` (or None)."""
    if not request.fits_in(machine.capacity):
        return None
    victims = machine.preemptible_below(tier.rank)
    freed = Resources.ZERO
    chosen: List[Instance] = []
    for victim in victims:
        freed = freed + victim.request
        chosen.append(victim)
        alloc = machine.allocated - freed
        if (alloc.cpu + request.cpu <= machine.capacity.cpu * params.overcommit_cpu
                and alloc.mem + request.mem
                <= machine.capacity.mem * params.overcommit_mem):
            return chosen
    return None


def format_explanation(explanation: PlacementExplanation,
                       max_machines: int = 10) -> str:
    """Human-readable rendering (the operator-facing view)."""
    lines = [
        f"request: cpu={explanation.request.cpu:.3f} "
        f"mem={explanation.request.mem:.3f} tier={explanation.tier.value}",
    ]
    if explanation.placeable:
        lines.append(f"decision: place on machine {explanation.chosen_machine_id}")
    else:
        lines.append("decision: UNPLACEABLE right now")
    lines.append("fleet verdicts:")
    for verdict, count in sorted(explanation.summary().items(),
                                 key=lambda kv: -kv[1]):
        lines.append(f"  {count:4d} x {verdict}")
    shown = 0
    for v in explanation.verdicts:
        if v.verdict in (Verdict.FITS, Verdict.PREEMPTIBLE) and shown < max_machines:
            extra = (f" victims={list(v.victims)}" if v.victims else
                     f" score={v.score:.3f}" if v.score is not None else "")
            lines.append(f"  machine {v.machine_id}: {v.verdict.value}"
                         f" (headroom cpu={v.headroom_cpu:.3f}"
                         f" mem={v.headroom_mem:.3f}){extra}")
            shown += 1
    advice = explanation.advice()
    if advice:
        lines.append("advice:")
        lines.extend(f"  - {tip}" for tip in advice)
    return "\n".join(lines)
