"""Two-dimensional resource vectors (CPU in NCUs, memory in NMUs).

Both trace generations normalize resources so the largest machine is
1.0 in each dimension; all quantities here live on that scale.
"""

from __future__ import annotations

from dataclasses import dataclass

_new = object.__new__
_set = object.__setattr__


@dataclass(frozen=True, slots=True)
class Resources:
    """An (NCU, NMU) pair; immutable, supports elementwise arithmetic.

    ``slots=True`` because millions of these exist per month-scale run
    and ``.cpu``/``.mem`` are among the hottest attribute reads in the
    simulator.
    """

    cpu: float
    mem: float

    def __post_init__(self):
        if self.cpu < -1e-9 or self.mem < -1e-9:
            raise ValueError(f"negative resources: cpu={self.cpu}, mem={self.mem}")

    # Arithmetic bypasses the validating constructor: __add__/__mul__
    # preserve non-negativity and __sub__ clamps at zero, so re-running
    # __post_init__ (plus the frozen-dataclass __setattr__ dance) on
    # every operation — millions per simulated month — buys nothing.
    def __add__(self, other: "Resources") -> "Resources":
        r = _new(Resources)
        _set(r, "cpu", self.cpu + other.cpu)
        _set(r, "mem", self.mem + other.mem)
        return r

    def __sub__(self, other: "Resources") -> "Resources":
        # Clamp tiny negative residue from float accumulation.
        r = _new(Resources)
        _set(r, "cpu", max(0.0, self.cpu - other.cpu))
        _set(r, "mem", max(0.0, self.mem - other.mem))
        return r

    def __mul__(self, k: float) -> "Resources":
        r = _new(Resources)
        _set(r, "cpu", self.cpu * k)
        _set(r, "mem", self.mem * k)
        return r

    __rmul__ = __mul__

    @staticmethod
    def unchecked(cpu: float, mem: float) -> "Resources":
        """Construct without the validating ``__post_init__``.

        For hot paths whose arithmetic already preserves non-negativity
        (the same contract the operators above rely on).
        """
        r = _new(Resources)
        _set(r, "cpu", cpu)
        _set(r, "mem", mem)
        return r

    def fits_in(self, capacity: "Resources") -> bool:
        """True if this request fits inside ``capacity`` on both dimensions."""
        return self.cpu <= capacity.cpu + 1e-12 and self.mem <= capacity.mem + 1e-12

    def scale_to(self, other: "Resources") -> float:
        """Largest k such that k * self fits in other (both dims)."""
        ks = []
        if self.cpu > 0:
            ks.append(other.cpu / self.cpu)
        if self.mem > 0:
            ks.append(other.mem / self.mem)
        return min(ks) if ks else float("inf")

    def dominant_share(self, capacity: "Resources") -> float:
        """The larger of cpu/capacity.cpu and mem/capacity.mem (DRF-style)."""
        shares = []
        if capacity.cpu > 0:
            shares.append(self.cpu / capacity.cpu)
        if capacity.mem > 0:
            shares.append(self.mem / capacity.mem)
        return max(shares) if shares else 0.0

    def is_zero(self) -> bool:
        return self.cpu <= 1e-12 and self.mem <= 1e-12


Resources.ZERO = Resources(0.0, 0.0)
