"""The best-effort batch scheduler's admission queue.

Like Omega, Borg runs multiple schedulers; the batch scheduler manages
the aggregate best-effort-batch workload *for throughput* by queueing
jobs until the cell can handle them, after which the job is handed to
the regular Borg scheduler (paper section 3, "Batch queuing").  Jobs
held here are in the QUEUED state; admission emits ENABLE.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional

from repro.sim.entities import Collection
from repro.sim.resources import Resources


@dataclass(frozen=True)
class BatchParams:
    """Admission-control knobs."""

    #: Admit queued beb jobs while the beb tier's allocated CPU is below
    #: this fraction of cell capacity.
    beb_cpu_allocation_target: float = 0.55
    #: Same threshold for memory.
    beb_mem_allocation_target: float = 0.55
    #: How often the queue re-evaluates admission, seconds.
    check_interval: float = 60.0


class BatchQueue:
    """FIFO admission control for best-effort-batch collections."""

    def __init__(self, params: BatchParams, cell_capacity: Resources):
        self.params = params
        self.cell_capacity = cell_capacity
        self._queue: deque = deque()
        #: Sum of requests of currently-admitted, still-live beb collections.
        self.beb_allocated = Resources.ZERO

    def __len__(self) -> int:
        return len(self._queue)

    def enqueue(self, collection: Collection) -> None:
        self._queue.append(collection)

    def _collection_request(self, collection: Collection) -> Resources:
        total = Resources.ZERO
        for inst in collection.instances:
            total = total + inst.request
        return total

    def _admits(self, request: Resources) -> bool:
        """Budget check: would admitting ``request`` stay under target?

        A nearly-empty budget always admits the queue head — otherwise a
        job whose request alone exceeds the budget would deadlock the
        queue forever.
        """
        cap = self.cell_capacity
        p = self.params
        budget_cpu = cap.cpu * p.beb_cpu_allocation_target
        budget_mem = cap.mem * p.beb_mem_allocation_target
        if (self.beb_allocated.cpu <= 0.05 * budget_cpu
                and self.beb_allocated.mem <= 0.05 * budget_mem):
            return True
        return (self.beb_allocated.cpu + request.cpu <= budget_cpu
                and self.beb_allocated.mem + request.mem <= budget_mem)

    def admit_ready(self) -> List[Collection]:
        """Admit queued jobs while their requests fit the beb budget.

        Skips (drops from the queue) collections that terminated while
        queued — a user can kill a queued job.
        """
        admitted: List[Collection] = []
        while self._queue:
            head = self._queue[0]
            if head.is_done:
                self._queue.popleft()
                continue
            request = self._collection_request(head)
            if not self._admits(request):
                break
            self._queue.popleft()
            self.beb_allocated = self.beb_allocated + request
            admitted.append(head)
        return admitted

    def release(self, collection: Collection) -> None:
        """Return an admitted collection's share on termination."""
        self.beb_allocated = self.beb_allocated - self._collection_request(collection)

    def peek_waiting(self) -> Optional[Collection]:
        return self._queue[0] if self._queue else None
