"""Structure-of-arrays fleet state backing the vectorized placement kernel.

:class:`FleetState` mirrors a cell's :class:`~repro.sim.machine.Machine`
list as parallel numpy arrays (capacity, allocation, up/down, platform
code), so admissibility and best-fit scoring over candidate sets become
a handful of vector operations instead of a Python loop per machine.

The arrays are kept in sync *incrementally*: an attached machine writes
its post-mutation allocation and up/down state through the sync hooks
below on every :meth:`~repro.sim.machine.Machine.place`,
:meth:`~repro.sim.machine.Machine.remove`, and ``up`` transition.  The
synced values are copied verbatim from the machine's own accounting (not
recomputed), so ``allocated_cpu[i]`` is bit-identical to
``machines[i].allocated.cpu`` at all times — the invariant that makes
the vectorized kernel's arithmetic exactly equal to the per-object
reference path (see DESIGN.md §10).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.sim.machine import Machine


class FleetState:
    """Columnar mirror of a machine fleet.

    With ``attach=True`` (the default) each machine is bound to this
    state and keeps it current through the sync hooks; a machine belongs
    to at most one attached ``FleetState`` at a time.  ``attach=False``
    builds a one-shot snapshot of the fleet's current state without
    claiming ownership — used when a plain machine sequence is passed to
    the placement policy directly (tests, diagnostics).
    """

    def __init__(self, machines: Sequence["Machine"], attach: bool = True):
        self.machines: List["Machine"] = list(machines)
        n = len(self.machines)
        self.n = n
        self.machine_id = np.fromiter(
            (m.machine_id for m in self.machines), dtype=np.int64, count=n)
        self.capacity_cpu = np.fromiter(
            (m.capacity.cpu for m in self.machines), dtype=np.float64, count=n)
        self.capacity_mem = np.fromiter(
            (m.capacity.mem for m in self.machines), dtype=np.float64, count=n)
        self._id_order: np.ndarray = None  # lazy; machine ids never change
        self.up = np.fromiter((m.up for m in self.machines), dtype=bool, count=n)
        #: Packed (2, n) float64 matrix: row 0 is allocated CPU, row 1
        #: allocated memory.  Dimension-major (transposed) so the sampled
        #: placement path gathers a candidate block with one
        #: ``take(axis=1)`` and every downstream per-dimension view is a
        #: contiguous row; the named ``allocated_cpu``/``allocated_mem``
        #: rows are views into it, so one write updates both forms.
        self.alloc = np.empty((2, n), dtype=np.float64)
        self.alloc[0] = np.fromiter(
            (m.allocated.cpu for m in self.machines), dtype=np.float64, count=n)
        self.alloc[1] = np.fromiter(
            (m.allocated.mem for m in self.machines), dtype=np.float64, count=n)
        self.allocated_cpu = self.alloc[0]
        self.allocated_mem = self.alloc[1]
        #: Python-native mirrors of the same state, kept current by the
        #: same sync hooks.  The sampled placement path examines only
        #: ``candidates`` (~12) machines per call, where list indexing
        #: beats numpy's per-op dispatch by an order of magnitude; the
        #: float values are identical to the array cells (both are
        #: copied verbatim from the machine's accounting).
        self.py_alloc: List[tuple] = [
            (m.allocated.cpu, m.allocated.mem) for m in self.machines]
        self.py_up: List[bool] = [m.up for m in self.machines]
        self._platform_codes: Dict[str, int] = {}
        codes = np.empty(n, dtype=np.int32)
        for i, machine in enumerate(self.machines):
            codes[i] = self._platform_codes.setdefault(
                machine.platform, len(self._platform_codes))
        self.platform_code = codes
        if attach:
            for i, machine in enumerate(self.machines):
                machine.attach_fleet(self, i)

    def platform_code_of(self, platform: str) -> int:
        """The integer code of ``platform``; -1 if no machine has it."""
        return self._platform_codes.get(platform, -1)

    def up_count(self) -> int:
        """How many machines are currently up (fault-injection telemetry)."""
        return int(self.up.sum())

    def capacity_by_id(self, ids: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Gather ``(cpu, mem)`` capacity for an array of machine ids.

        Vectorized replacement for a per-id dict lookup: one
        ``searchsorted`` against the (lazily cached) id-sorted index.
        Unknown ids gather ``np.inf`` for both dimensions — the value a
        capacity clamp treats as "no limit", matching the historical
        ``dict.get(id, inf)`` behavior.
        """
        if self.n == 0:
            inf = np.full(len(ids), np.inf)
            return inf, inf.copy()
        if self._id_order is None:
            self._id_order = np.argsort(self.machine_id, kind="stable")
        order = self._id_order
        sorted_ids = self.machine_id[order]
        pos = np.minimum(np.searchsorted(sorted_ids, ids), self.n - 1)
        hit = sorted_ids[pos] == ids
        src = order[pos]
        cpu = np.where(hit, self.capacity_cpu[src], np.inf)
        mem = np.where(hit, self.capacity_mem[src], np.inf)
        return cpu, mem

    # -- sync hooks (called by Machine) ---------------------------------------

    def sync_allocated(self, index: int, cpu: float, mem: float) -> None:
        """Copy a machine's post-mutation allocation into the arrays."""
        self.alloc[0, index] = cpu
        self.alloc[1, index] = mem
        self.py_alloc[index] = (cpu, mem)

    def sync_up(self, index: int, up: bool) -> None:
        """Record a machine's up/down transition."""
        self.up[index] = up
        self.py_up[index] = up

    # -- diagnostics ----------------------------------------------------------

    def check_consistency(self) -> None:
        """Assert the arrays equal the machines' own accounting (tests)."""
        for i, machine in enumerate(self.machines):
            if (self.allocated_cpu[i] != machine.allocated.cpu
                    or self.allocated_mem[i] != machine.allocated.mem
                    or bool(self.up[i]) != machine.up
                    or self.alloc[0, i] != machine.allocated.cpu
                    or self.alloc[1, i] != machine.allocated.mem):
                raise AssertionError(
                    f"FleetState out of sync at machine index {i}: "
                    f"arrays=({self.allocated_cpu[i]}, {self.allocated_mem[i]}, "
                    f"{self.up[i]}) machine=({machine.allocated.cpu}, "
                    f"{machine.allocated.mem}, {machine.up})"
                )

    def __repr__(self) -> str:
        return (f"FleetState(n={self.n}, up={int(self.up.sum())}, "
                f"platforms={len(self._platform_codes)})")
