"""A discrete-event simulator of a Borg cell.

This substrate replaces the production clusters behind the paper's
traces.  It models the Borg machinery the paper describes: a logically
centralized scheduler placing instances onto heterogeneous machines,
priority tiers with preemption, a best-effort-batch queue feeding the
main scheduler, alloc sets reserving resources for later jobs,
parent-child job dependencies with cascade kills, task-level restarts
("churn"), machine maintenance evictions, resource over-commit, and
Autopilot vertical autoscaling.  Running a cell produces an event log
and usage samples with the same vocabulary as the 2019 trace, which the
``repro.trace`` encoder then turns into trace tables.
"""

from repro.sim.autopilot import AutopilotMode
from repro.sim.cell import CellConfig, CellSim
from repro.sim.entities import Collection, CollectionType, EndReason, Instance, InstanceState
from repro.sim.events import EventLog, EventType
from repro.sim.machine import Machine
from repro.sim.priority import (
    TIERS,
    Tier,
    priority_for_tier_2011,
    priority_for_tier_2019,
    tier_of_priority_2011,
    tier_of_priority_2019,
)
from repro.sim.resources import Resources

__all__ = [
    "AutopilotMode",
    "CellConfig",
    "CellSim",
    "Collection",
    "CollectionType",
    "EndReason",
    "Instance",
    "InstanceState",
    "EventLog",
    "EventType",
    "Machine",
    "TIERS",
    "Tier",
    "priority_for_tier_2011",
    "priority_for_tier_2019",
    "tier_of_priority_2011",
    "tier_of_priority_2019",
    "Resources",
]
