"""Placement: machine selection, over-commit admission, and preemption.

Borg's scheduling algorithms are "generally relatively simple greedy
heuristics" (paper section 10); we implement the classic shape: feasibility
check under per-dimension over-commit factors, best-fit scoring over a
sampled candidate set (power-of-k-choices keeps month-scale runs fast
without changing behavior materially), and priority preemption — a
production-tier task may evict lower-tier instances to make room.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.sim.entities import Instance
from repro.sim.machine import Machine
from repro.sim.resources import Resources


@dataclass(frozen=True)
class SchedulerParams:
    """Placement-policy knobs (per era)."""

    #: Admission over-commit factor for CPU (allocated may reach
    #: capacity * factor).  2011 over-committed CPU aggressively; 2019
    #: over-commits CPU and memory comparably (paper section 4).
    overcommit_cpu: float = 1.5
    #: Admission over-commit factor for memory.
    overcommit_mem: float = 1.4
    #: Number of randomly sampled candidate machines per placement.
    candidates: int = 12
    #: Scheduler processes the pending queue in rounds this many seconds
    #: apart (drives the figure 10 scheduling-delay distribution).
    round_interval: float = 5.0
    #: Maximum placement decisions per round.
    round_capacity: int = 2000


class PlacementPolicy:
    """Stateless placement decisions over a machine fleet."""

    def __init__(self, params: SchedulerParams, rng: np.random.Generator):
        self.params = params
        self.rng = rng

    def _admissible(self, machine: Machine, request: Resources,
                    constraint: str = "") -> bool:
        if not machine.up:
            return False
        if constraint and machine.platform != constraint:
            return False
        cap = machine.capacity
        alloc = machine.allocated
        return (alloc.cpu + request.cpu <= cap.cpu * self.params.overcommit_cpu + 1e-12
                and alloc.mem + request.mem <= cap.mem * self.params.overcommit_mem + 1e-12)

    def _score(self, machine: Machine, request: Resources) -> float:
        """Best-fit score: smaller is better (tighter remaining headroom)."""
        cap = machine.capacity
        free_cpu = cap.cpu * self.params.overcommit_cpu - machine.allocated.cpu - request.cpu
        free_mem = cap.mem * self.params.overcommit_mem - machine.allocated.mem - request.mem
        return max(free_cpu / max(cap.cpu, 1e-9), free_mem / max(cap.mem, 1e-9))

    def find_machine(self, machines: Sequence[Machine], request: Resources,
                     constraint: str = "") -> Optional[Machine]:
        """Best-fit over a sampled candidate set; None if nothing admits.

        ``constraint``, when non-empty, restricts placement to machines of
        that platform (a machine-attribute constraint).
        """
        obs.inc("sim.placement.attempts")
        n = len(machines)
        if n == 0:
            return None
        best: Optional[Machine] = None
        best_score = float("inf")
        if self.params.candidates < n:
            # Sampling with replacement: far cheaper than a permutation
            # draw, and an occasional duplicate candidate is harmless.
            idx = self.rng.integers(0, n, size=self.params.candidates)
            for i in idx:
                m = machines[i]
                if self._admissible(m, request, constraint):
                    score = self._score(m, request)
                    if score < best_score:
                        best, best_score = m, score
            if best is not None:
                return best
        # Sampled set failed: full scan so feasibility is never missed.
        obs.inc("sim.placement.full_scans")
        for m in machines:
            if self._admissible(m, request, constraint):
                score = self._score(m, request)
                if score < best_score:
                    best, best_score = m, score
        return best

    def find_preemption(self, machines: Sequence[Machine], request: Resources,
                        rank: int,
                        constraint: str = "") -> Optional[Tuple[Machine, List[Instance]]]:
        """A machine where evicting lower-rank instances admits ``request``.

        Returns the machine plus the minimal victim prefix (largest
        victims first), or None if no machine can be freed.  Only
        instances with tier rank strictly below ``rank`` are eligible —
        production never evicts production (section 2).
        """
        obs.inc("sim.placement.preemption_searches")
        n = len(machines)
        if n == 0:
            return None
        # Preemption search is expensive (victim enumeration per machine);
        # sample a candidate set like placement does.
        if n <= 24:
            candidates = list(machines)
        else:
            candidates = [machines[i] for i in self.rng.integers(0, n, size=24)]
        best: Optional[Tuple[Machine, List[Instance]]] = None
        best_victims = float("inf")
        for m in candidates:
            if not m.up or not request.fits_in(m.capacity):
                continue
            if constraint and m.platform != constraint:
                continue
            victims = m.preemptible_below(rank)
            if not victims:
                continue
            freed = Resources.ZERO
            chosen: List[Instance] = []
            # Simulate the allocation after each eviction until it fits.
            for v in victims:
                freed = freed + v.request
                chosen.append(v)
                alloc = m.allocated - freed
                if (alloc.cpu + request.cpu <= m.capacity.cpu * self.params.overcommit_cpu
                        and alloc.mem + request.mem
                        <= m.capacity.mem * self.params.overcommit_mem):
                    if len(chosen) < best_victims:
                        best = (m, list(chosen))
                        best_victims = len(chosen)
                    break
        return best


class PendingQueue:
    """The scheduler's pending set, ordered by (tier rank desc, FIFO).

    Production-tier work is always dispatched before best-effort work,
    which is what makes production scheduling delays the fastest in
    figure 10b.
    """

    def __init__(self):
        self._items: List[Tuple[int, int, Instance]] = []
        self._seq = 0

    def push(self, instance: Instance) -> None:
        self._items.append((-instance.tier.rank, self._seq, instance))
        self._seq += 1

    def pop_batch(self, limit: int) -> List[Instance]:
        """Remove and return up to ``limit`` instances in dispatch order."""
        if not self._items:
            return []
        self._items.sort()
        batch = [item[2] for item in self._items[:limit]]
        del self._items[:limit]
        return batch

    def remove_dead(self) -> None:
        """Drop instances whose collection already terminated."""
        self._items = [it for it in self._items if not it[2].collection.is_done]

    def __len__(self) -> int:
        return len(self._items)
