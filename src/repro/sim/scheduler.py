"""Placement: machine selection, over-commit admission, and preemption.

Borg's scheduling algorithms are "generally relatively simple greedy
heuristics" (paper section 10); we implement the classic shape: feasibility
check under per-dimension over-commit factors, best-fit scoring over a
sampled candidate set (power-of-k-choices keeps month-scale runs fast
without changing behavior materially), and priority preemption — a
production-tier task may evict lower-tier instances to make room.

The hot path runs as a structure-of-arrays kernel over a
:class:`~repro.sim.fleet.FleetState`: candidate sampling draws from a
pre-drawn index block, admissibility and best-fit scoring are vector
operations, and the full-scan fallback is one masked ``argmin``.  The
kernel is bit-equivalent to the per-machine reference methods
:meth:`PlacementPolicy._admissible` / :meth:`PlacementPolicy._score`
(same float operations in the same order; see DESIGN.md §10 and the
equivalence property test).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.sim.entities import Instance
from repro.sim.fleet import FleetState
from repro.sim.machine import Machine
from repro.sim.resources import Resources


@dataclass(frozen=True)
class SchedulerParams:
    """Placement-policy knobs (per era)."""

    #: Admission over-commit factor for CPU (allocated may reach
    #: capacity * factor).  2011 over-committed CPU aggressively; 2019
    #: over-commits CPU and memory comparably (paper section 4).
    overcommit_cpu: float = 1.5
    #: Admission over-commit factor for memory.
    overcommit_mem: float = 1.4
    #: Number of randomly sampled candidate machines per placement.
    candidates: int = 12
    #: Scheduler processes the pending queue in rounds this many seconds
    #: apart (drives the figure 10 scheduling-delay distribution).
    round_interval: float = 5.0
    #: Maximum placement decisions per round.
    round_capacity: int = 2000


#: Candidate machines examined per preemption search.
PREEMPTION_CANDIDATES = 24


class PlacementPolicy:
    """Stateless placement decisions over a machine fleet."""

    #: Size of the pre-drawn candidate-index block.  One bulk
    #: ``integers()`` call amortizes the numpy Generator overhead across
    #: hundreds of placements; consuming the block strictly in order
    #: keeps the index sequence bit-identical to per-call draws (numpy
    #: fills bounded integers sequentially from the bit stream).
    INDEX_BLOCK = 4096

    def __init__(self, params: SchedulerParams, rng: np.random.Generator):
        self.params = params
        self.rng = rng
        self._idx_block: Optional[np.ndarray] = None
        self._idx_pos = 0
        self._idx_bound = -1
        # Request-independent per-fleet arrays (admission bounds, score
        # denominators), rebuilt when a different FleetState shows up.
        # Machine capacities never change during a run, so the cache
        # stays valid across allocation and up/down churn.
        self._consts_for: Optional[FleetState] = None
        self._adm_cpu: Optional[np.ndarray] = None
        self._adm_mem: Optional[np.ndarray] = None
        self._headroom_cpu: Optional[np.ndarray] = None
        self._headroom_mem: Optional[np.ndarray] = None
        self._den_cpu: Optional[np.ndarray] = None
        self._den_mem: Optional[np.ndarray] = None
        # Counter handles bound once: the hot path pays one integer add
        # per placement, not a registry lookup (same budget rule as the
        # cell event loop).
        self._ctr_attempts = obs.counter("sim.placement.attempts")
        self._ctr_full_scans = obs.counter("sim.placement.full_scans")
        self._ctr_preemptions = obs.counter("sim.placement.preemption_searches")
        # Python-native per-machine constants for the sampled path (one
        # six-tuple per machine); built alongside the arrays in
        # _fleet_consts.  With ~12 candidates per placement, a scalar
        # sweep over plain lists beats the vectorized gather: each numpy
        # op pays ~1-2 µs of dispatch regardless of width, and the
        # sampled kernel needed ~15 of them per call.
        self._py_consts: Optional[List[tuple]] = None
        self._py_platform: Optional[List[int]] = None

    def _fleet_consts(self, fleet: FleetState) -> None:
        """(Re)build the per-fleet constant arrays for ``fleet``.

        Elementwise precomputation is bit-exact: indexing a precomputed
        ``capacity * factor + eps`` array yields the same float64 as
        computing it per candidate.
        """
        if self._consts_for is fleet:
            return
        self._consts_for = fleet
        self._adm_cpu = fleet.capacity_cpu * self.params.overcommit_cpu + 1e-12
        self._adm_mem = fleet.capacity_mem * self.params.overcommit_mem + 1e-12
        self._headroom_cpu = fleet.capacity_cpu * self.params.overcommit_cpu
        self._headroom_mem = fleet.capacity_mem * self.params.overcommit_mem
        self._den_cpu = np.maximum(fleet.capacity_cpu, 1e-9)
        self._den_mem = np.maximum(fleet.capacity_mem, 1e-9)
        # The same six constants as one Python tuple per machine, for
        # the scalar sampled path.  ``tolist`` round-trips float64
        # exactly (a Python float *is* an IEEE double), so indexing
        # these tuples yields bit-identical values to the arrays.
        self._py_consts = list(zip(
            self._adm_cpu.tolist(), self._adm_mem.tolist(),
            self._headroom_cpu.tolist(), self._headroom_mem.tolist(),
            self._den_cpu.tolist(), self._den_mem.tolist(),
        ))
        self._py_platform = fleet.platform_code.tolist()

    # ------------------------------------------------------------ reference
    # Scalar reference implementations.  The vectorized kernel below is
    # bit-equivalent to looping these over machines; the equivalence
    # property test holds the two paths together.

    def _admissible(self, machine: Machine, request: Resources,
                    constraint: str = "") -> bool:
        if not machine.up:
            return False
        if constraint and machine.platform != constraint:
            return False
        cap = machine.capacity
        alloc = machine.allocated
        return (alloc.cpu + request.cpu <= cap.cpu * self.params.overcommit_cpu + 1e-12
                and alloc.mem + request.mem <= cap.mem * self.params.overcommit_mem + 1e-12)

    def _score(self, machine: Machine, request: Resources) -> float:
        """Best-fit score: smaller is better (tighter remaining headroom)."""
        cap = machine.capacity
        free_cpu = cap.cpu * self.params.overcommit_cpu - machine.allocated.cpu - request.cpu
        free_mem = cap.mem * self.params.overcommit_mem - machine.allocated.mem - request.mem
        return max(free_cpu / max(cap.cpu, 1e-9), free_mem / max(cap.mem, 1e-9))

    # --------------------------------------------------------------- kernel

    def _draw_indices(self, n: int, k: int) -> np.ndarray:
        """``k`` candidate indices in [0, n): next slice of the block.

        Bit-identical to ``rng.integers(0, n, size=k)`` called per
        placement, as long as ``n`` stays constant (it does for a cell
        run; a changed bound restarts the block).
        """
        if n != self._idx_bound:
            self._idx_bound = n
            self._idx_block = None
        block = self._idx_block
        if block is not None and self._idx_pos + k <= len(block):
            out = block[self._idx_pos:self._idx_pos + k]
            self._idx_pos += k
            return out
        out = np.empty(k, dtype=np.int64)
        filled = 0
        while filled < k:
            if block is None or self._idx_pos >= len(block):
                block = self.rng.integers(0, n, size=max(self.INDEX_BLOCK, k))
                self._idx_block = block
                self._idx_pos = 0
            take = min(k - filled, len(block) - self._idx_pos)
            out[filled:filled + take] = block[self._idx_pos:self._idx_pos + take]
            self._idx_pos += take
            filled += take
        return out

    def _admissible_mask(self, fleet: FleetState, idx: Optional[np.ndarray],
                         request: Resources, constraint: str,
                         code: int) -> np.ndarray:
        """Vector admissibility over ``idx`` (or the whole fleet)."""
        if idx is None:
            up = fleet.up
            a_cpu, a_mem = fleet.allocated_cpu, fleet.allocated_mem
            adm_cpu, adm_mem = self._adm_cpu, self._adm_mem
        else:
            up = fleet.up[idx]
            a_cpu, a_mem = fleet.allocated_cpu[idx], fleet.allocated_mem[idx]
            adm_cpu, adm_mem = self._adm_cpu[idx], self._adm_mem[idx]
        ok = (up
              & (a_cpu + request.cpu <= adm_cpu)
              & (a_mem + request.mem <= adm_mem))
        if constraint:
            codes = fleet.platform_code if idx is None else fleet.platform_code[idx]
            ok = ok & (codes == code)
        return ok

    def _score_at(self, fleet: FleetState, idx: np.ndarray,
                  request: Resources) -> np.ndarray:
        """Vector best-fit scores for the machines at ``idx``."""
        free_cpu = (self._headroom_cpu[idx]
                    - fleet.allocated_cpu[idx] - request.cpu)
        free_mem = (self._headroom_mem[idx]
                    - fleet.allocated_mem[idx] - request.mem)
        return np.maximum(free_cpu / self._den_cpu[idx],
                          free_mem / self._den_mem[idx])

    def find_machine(self, fleet: Union[FleetState, Sequence[Machine]],
                     request: Resources,
                     constraint: str = "") -> Optional[Machine]:
        """Best-fit over a sampled candidate set; None if nothing admits.

        ``constraint``, when non-empty, restricts placement to machines of
        that platform (a machine-attribute constraint).  Accepts either a
        live :class:`FleetState` (the simulator's hot path) or a plain
        machine sequence (snapshotted on the fly).
        """
        self._ctr_attempts.inc()
        if not isinstance(fleet, FleetState):
            fleet = FleetState(fleet, attach=False)
        n = fleet.n
        if n == 0:
            return None
        self._fleet_consts(fleet)
        code = fleet.platform_code_of(constraint) if constraint else -1
        sampled: Optional[np.ndarray] = None
        if self.params.candidates < n:
            # Sampling with replacement: far cheaper than a permutation
            # draw, and an occasional duplicate candidate is harmless.
            # The candidate sweep is a *scalar* Python loop over the
            # fleet's list mirrors: at ~12 candidates the per-op numpy
            # dispatch of a vectorized gather dwarfs the arithmetic.
            # The float operations (and their order) are identical to
            # _admissible_mask/_score_at and to the scalar reference —
            # Python floats are the same IEEE doubles — and "first
            # strictly-smaller score wins" is exactly the masked argmin
            # tie-break, so placements are bit-identical to the
            # vectorized kernel (the equivalence property test holds
            # all three spellings together).
            idx = self._draw_indices(n, self.params.candidates)
            py_alloc = fleet.py_alloc
            py_up = fleet.py_up
            consts = self._py_consts
            platform = self._py_platform
            req_cpu = request.cpu
            req_mem = request.mem
            best_i = -1
            best_score = float("inf")
            for i in idx.tolist():
                if not py_up[i]:
                    continue
                a_cpu, a_mem = py_alloc[i]
                adm_cpu, adm_mem, head_cpu, head_mem, den_cpu, den_mem = consts[i]
                if a_cpu + req_cpu > adm_cpu or a_mem + req_mem > adm_mem:
                    continue
                if constraint and platform[i] != code:
                    continue
                free_cpu = (head_cpu - a_cpu - req_cpu) / den_cpu
                free_mem = (head_mem - a_mem - req_mem) / den_mem
                score = free_cpu if free_cpu >= free_mem else free_mem
                if score < best_score:
                    best_score = score
                    best_i = i
            if best_i >= 0:
                return fleet.machines[best_i]
            sampled = idx
        # Sampled set failed: full scan so feasibility is never missed.
        # The sampled indices were just proven inadmissible, so they are
        # masked out instead of being examined a second time.
        self._ctr_full_scans.inc()
        ok = self._admissible_mask(fleet, None, request, constraint, code)
        if sampled is not None:
            ok[sampled] = False
        hits = np.flatnonzero(ok)
        if len(hits) == 0:
            return None
        best = hits[self._score_at(fleet, hits, request).argmin()]
        return fleet.machines[int(best)]

    def find_preemption(self, fleet: Union[FleetState, Sequence[Machine]],
                        request: Resources, rank: int,
                        constraint: str = "") -> Optional[Tuple[Machine, List[Instance]]]:
        """A machine where evicting lower-rank instances admits ``request``.

        Returns the machine plus the minimal victim prefix (largest
        victims first), or None if no machine can be freed.  Only
        instances with tier rank strictly below ``rank`` are eligible —
        production never evicts production (section 2).
        """
        self._ctr_preemptions.inc()
        machines = fleet.machines if isinstance(fleet, FleetState) else fleet
        n = len(machines)
        if n == 0:
            return None
        # Preemption search is expensive (victim enumeration per machine);
        # sample a candidate set like placement does.
        if n <= PREEMPTION_CANDIDATES:
            candidates = list(machines)
        else:
            candidates = [machines[i]
                          for i in self._draw_indices(n, PREEMPTION_CANDIDATES)]
        best: Optional[Tuple[Machine, List[Instance]]] = None
        best_victims = float("inf")
        for m in candidates:
            if not m.up or not request.fits_in(m.capacity):
                continue
            if constraint and m.platform != constraint:
                continue
            victims = m.preemptible_below(rank)
            if not victims:
                continue
            freed = Resources.ZERO
            chosen: List[Instance] = []
            # Simulate the allocation after each eviction until it fits.
            for v in victims:
                freed = freed + v.request
                chosen.append(v)
                alloc = m.allocated - freed
                if (alloc.cpu + request.cpu <= m.capacity.cpu * self.params.overcommit_cpu
                        and alloc.mem + request.mem
                        <= m.capacity.mem * self.params.overcommit_mem):
                    if len(chosen) < best_victims:
                        best = (m, list(chosen))
                        best_victims = len(chosen)
                    break
        return best


class PendingQueue:
    """The scheduler's pending set, ordered by (tier rank desc, FIFO).

    Production-tier work is always dispatched before best-effort work,
    which is what makes production scheduling delays the fastest in
    figure 10b.

    Implemented as one FIFO deque per tier rank: ``push`` appends in
    O(1), ``pop_batch`` drains rank buckets highest-rank-first (O(1)
    amortized per item — no per-round re-sort of already-ordered items),
    and ``remove_dead`` filters buckets in place instead of rebuilding
    the whole queue.  Dispatch order is exactly the old sort order
    ``(-tier.rank, arrival seq)``: within a rank bucket FIFO order *is*
    arrival order, and buckets are visited by descending rank.
    """

    def __init__(self):
        self._buckets: Dict[int, Deque[Instance]] = {}
        self._ranks: List[int] = []  # bucket keys, kept sorted descending
        self._size = 0

    def push(self, instance: Instance) -> None:
        # .collection.tier directly: Instance.tier is a delegating
        # property, and this is the queue's per-requeue hot path.
        rank = instance.collection.tier.rank
        bucket = self._buckets.get(rank)
        if bucket is None:
            bucket = self._buckets[rank] = deque()
            self._ranks.append(rank)
            self._ranks.sort(reverse=True)
        bucket.append(instance)
        self._size += 1

    def pop_batch(self, limit: int) -> List[Instance]:
        """Remove and return up to ``limit`` instances in dispatch order."""
        if limit <= 0 or self._size == 0:
            return []
        batch: List[Instance] = []
        for rank in self._ranks:
            bucket = self._buckets[rank]
            while bucket and len(batch) < limit:
                batch.append(bucket.popleft())
            if len(batch) >= limit:
                break
        self._size -= len(batch)
        return batch

    def remove_dead(self) -> None:
        """Drop instances whose collection already terminated."""
        for rank in self._ranks:
            bucket = self._buckets[rank]
            if not bucket:
                continue
            alive = [i for i in bucket if not i.collection.is_done]
            if len(alive) != len(bucket):
                self._size -= len(bucket) - len(alive)
                bucket.clear()
                bucket.extend(alive)

    def __len__(self) -> int:
        return self._size
