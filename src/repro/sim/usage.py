"""The per-instance resource usage model.

Real tasks use only a fraction of their requested limit, with diurnal
modulation and short-term noise; the 2019 trace records this as 5-minute
samples (average and maximum usage within each window).  This module
generates those samples for a completed run interval in one vectorized
pass, which is what keeps month-scale simulations tractable.

CPU is work-conserving (usage may burst past the limit); memory is a
hard bound (usage never exceeds the limit) — paper section 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional

import numpy as np

from repro.sim.autopilot import AutopilotMode, AutopilotParams, limit_trajectory
from repro.sim.priority import Tier
from repro.util.timeutil import HOUR_SECONDS, SAMPLE_PERIOD_SECONDS

#: Integer tier codes used in the packed usage arrays.  A tier's code
#: IS its preemption rank — the simulator's hot path relies on this and
#: writes ``tier.rank`` directly instead of hashing an enum key here.
TIER_CODES = {tier: tier.rank for tier in Tier}
TIER_FROM_CODE = {v: k for k, v in TIER_CODES.items()}
AUTOPILOT_CODES = {"none": 0, "fully": 1, "constrained": 2}
AUTOPILOT_FROM_CODE = {v: k for k, v in AUTOPILOT_CODES.items()}


@dataclass(frozen=True)
class UsageModelParams:
    """Knobs of the synthetic usage process."""

    #: Relative amplitude of the diurnal (24 h) usage cycle.
    diurnal_amplitude: float = 0.15
    #: Lognormal sigma of window-to-window multiplicative noise.
    noise_sigma: float = 0.18
    #: Mean ratio of within-window peak to within-window average.
    burst_mean: float = 1.25
    #: Spread of the peak/average ratio.
    burst_sigma: float = 0.12
    #: CPU usage may exceed the limit by up to this factor (work conserving).
    cpu_overage_factor: float = 1.15


class UsageModel:
    """Generates 5-minute usage samples for instance run intervals."""

    def __init__(self, params: Optional[UsageModelParams] = None,
                 sample_period: float = SAMPLE_PERIOD_SECONDS,
                 utc_offset_hours: float = 0.0):
        self.params = params or UsageModelParams()
        if sample_period <= 0:
            raise ValueError(f"sample_period must be positive, got {sample_period}")
        self.sample_period = sample_period
        self.utc_offset_hours = utc_offset_hours

    def window_starts(self, start: float, end: float) -> np.ndarray:
        """Grid-aligned sample-window start times covering [start, end)."""
        if end <= start:
            return np.empty(0)
        first = np.floor(start / self.sample_period) * self.sample_period
        return np.arange(first, end, self.sample_period)

    def _diurnal(self, t: np.ndarray) -> np.ndarray:
        """Multiplicative diurnal factor peaking mid-afternoon local time."""
        local_hours = (t / HOUR_SECONDS + self.utc_offset_hours) % 24.0
        phase = 2.0 * np.pi * (local_hours - 15.0) / 24.0
        return 1.0 + self.params.diurnal_amplitude * np.cos(phase)

    def sample_interval(self, rng: np.random.Generator, start: float, end: float,
                        cpu_limit: float, mem_limit: float,
                        cpu_fraction: float, mem_fraction: float) -> Dict[str, np.ndarray]:
        """Usage samples for one run interval.

        Returns a dict of equal-length arrays: ``window_start``,
        ``duration`` (seconds of the window actually overlapped by the
        run), ``avg_cpu``, ``max_cpu``, ``avg_mem``, ``max_mem``.
        """
        starts = self.window_starts(start, end)
        n = len(starts)
        if n == 0:
            return {k: np.empty(0) for k in
                    ("window_start", "duration", "avg_cpu", "max_cpu", "avg_mem", "max_mem")}
        p = self.params

        window_ends = np.minimum(starts + self.sample_period, end)
        window_begin = np.maximum(starts, start)
        duration = window_ends - window_begin

        diurnal = self._diurnal(starts + self.sample_period / 2.0)
        noise = rng.lognormal(mean=0.0, sigma=p.noise_sigma, size=n)
        avg_cpu = cpu_limit * cpu_fraction * diurnal * noise
        # CPU is work-conserving: clip at a soft overage above the limit.
        avg_cpu = np.clip(avg_cpu, 0.0, cpu_limit * p.cpu_overage_factor)

        burst = np.maximum(1.0, rng.normal(p.burst_mean, p.burst_sigma, size=n))
        max_cpu = np.clip(avg_cpu * burst, avg_cpu, cpu_limit * p.cpu_overage_factor)

        # Memory: slow random walk around the target fraction, hard-capped.
        mem_noise = rng.lognormal(mean=0.0, sigma=p.noise_sigma * 0.5, size=n)
        avg_mem = np.clip(mem_limit * mem_fraction * mem_noise, 0.0, mem_limit)
        mem_burst = np.maximum(1.0, rng.normal(1.05, 0.03, size=n))
        max_mem = np.clip(avg_mem * mem_burst, avg_mem, mem_limit)

        return {
            "window_start": starts,
            "duration": duration,
            "avg_cpu": avg_cpu,
            "max_cpu": max_cpu,
            "avg_mem": avg_mem,
            "max_mem": max_mem,
        }


class _IntervalRecord(NamedTuple):
    """One closed run interval, queued for batched sample materialization.

    Every field is a scalar captured at stop time, so deferring the
    sampling to the end of the run cannot observe later mutations.
    """

    is_alloc: bool
    collection_id: int
    instance_index: int
    machine_id: int
    tier_code: int
    autopilot_code: int
    in_alloc: bool
    start: float
    end: float
    cpu_limit: float
    mem_limit: float
    cpu_fraction: float
    mem_fraction: float


class UsageBatch:
    """Accumulates run intervals and materializes usage samples in bulk.

    The simulator used to call :meth:`UsageModel.sample_interval` once per
    closed run interval (tens of thousands of small numpy calls per cell).
    ``UsageBatch`` instead records each interval as a scalar tuple and
    generates all sample columns in one vectorized pass at finalize time.

    Bit-exactness contract: the output is byte-identical to the
    per-interval path.  Two things make that hold:

    * The four RNG draws per task interval (cpu noise, cpu burst, mem
      noise, mem burst) are issued per interval, in record order — the
      exact call sequence the scalar path made.  They cannot be fused
      into one large draw: ``lognormal`` routes through the generator's
      internal ``exp``, which differs in ULPs from a vectorized
      ``np.exp`` over a fused ``standard_normal`` block.
    * All arithmetic keeps the scalar path's operation order (e.g.
      ``(limit * fraction) * diurnal * noise``), with per-interval
      scalars broadcast via ``np.repeat``.
    """

    COLUMNS = (
        "collection_id", "instance_index", "machine_id", "tier_code",
        "autopilot_code", "in_alloc", "window_start", "duration",
        "avg_cpu", "max_cpu", "avg_mem", "max_mem", "cpu_limit", "mem_limit",
    )

    def __init__(self, model: UsageModel, autopilot: AutopilotParams):
        self._model = model
        self._autopilot = autopilot
        self._records: List[_IntervalRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def add_task(self, *, collection_id: int, instance_index: int,
                 machine_id: int, tier_code: int, autopilot_code: int,
                 in_alloc: bool, start: float, end: float,
                 cpu_limit: float, mem_limit: float,
                 cpu_fraction: float, mem_fraction: float) -> None:
        """Queue a task run interval (samples drawn at finalize)."""
        self._records.append(_IntervalRecord(
            False, collection_id, instance_index, machine_id, tier_code,
            autopilot_code, in_alloc, start, end, cpu_limit, mem_limit,
            cpu_fraction, mem_fraction,
        ))

    def add_alloc(self, *, collection_id: int, instance_index: int,
                  machine_id: int, tier_code: int, autopilot_code: int,
                  start: float, end: float,
                  cpu_limit: float, mem_limit: float) -> None:
        """Queue an alloc-instance reservation interval (zero usage)."""
        self._records.append(_IntervalRecord(
            True, collection_id, instance_index, machine_id, tier_code,
            autopilot_code, False, start, end, cpu_limit, mem_limit,
            0.0, 0.0,
        ))

    def finalize(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        """Materialize all queued intervals into usage-sample columns."""
        model = self._model
        period = model.sample_period
        records = self._records
        if not records:
            return {c: np.empty(0) for c in self.COLUMNS}

        start_arr = np.array([r.start for r in records])
        end_arr = np.array([r.end for r in records])
        # The grid :meth:`UsageModel.window_starts` builds per interval
        # is ``np.arange(first, end, period)``, which has
        # ``ceil((end - first) / period)`` elements and equals
        # ``first + k * period`` element-for-element — so the full
        # concatenated grid can be produced directly, without an arange
        # call per interval.
        first = np.floor(start_arr / period) * period
        counts = np.maximum(
            np.ceil((end_arr - first) / period).astype(np.int64), 0)
        n_rows = int(counts.sum())
        if n_rows == 0:
            return {c: np.empty(0) for c in self.COLUMNS}
        row_offsets = np.cumsum(counts) - counts
        within = np.arange(n_rows) - np.repeat(row_offsets, counts)
        window_start = np.repeat(first, counts) + within * period

        def rep(values, dtype) -> np.ndarray:
            return np.repeat(np.asarray(values, dtype=dtype), counts)

        start_rep = np.repeat(start_arr, counts)
        end_rep = np.repeat(end_arr, counts)
        duration = (np.minimum(window_start + period, end_rep)
                    - np.maximum(window_start, start_rep))
        cpu_limit = rep([r.cpu_limit for r in records], float)
        mem_limit = rep([r.mem_limit for r in records], float)
        avg_cpu = np.zeros(n_rows)
        max_cpu = np.zeros(n_rows)
        avg_mem = np.zeros(n_rows)
        max_mem = np.zeros(n_rows)

        task_j = [j for j, r in enumerate(records) if not r.is_alloc]
        if task_j:
            t_counts = counts[task_j]
            t_count_list = t_counts.tolist()
            n_task = int(t_counts.sum())
            t_excl = np.cumsum(t_counts) - t_counts
            task_rows = (np.repeat(row_offsets[task_j] - t_excl, t_counts)
                         + np.arange(n_task))
            noise = np.empty(n_task)
            burst_raw = np.empty(n_task)
            mem_noise = np.empty(n_task)
            mem_burst_raw = np.empty(n_task)
            p = model.params
            lognormal, normal = rng.lognormal, rng.normal
            noise_sigma = p.noise_sigma
            mem_sigma = p.noise_sigma * 0.5
            burst_mean, burst_sigma = p.burst_mean, p.burst_sigma
            off = 0
            for n in t_count_list:
                if n == 0:
                    # The per-interval path returned before drawing when
                    # the grid was empty; consume nothing here either.
                    continue
                # Four draws per interval, record order: the scalar
                # path's exact RNG call sequence (see class docstring).
                end = off + n
                noise[off:end] = lognormal(mean=0.0, sigma=noise_sigma, size=n)
                burst_raw[off:end] = normal(burst_mean, burst_sigma, size=n)
                mem_noise[off:end] = lognormal(mean=0.0, sigma=mem_sigma, size=n)
                mem_burst_raw[off:end] = normal(1.05, 0.03, size=n)
                off = end

            diurnal = model._diurnal(window_start[task_rows] + period / 2.0)
            cl = np.array([records[j].cpu_limit for j in task_j])
            ml = np.array([records[j].mem_limit for j in task_j])
            cf = np.array([records[j].cpu_fraction for j in task_j])
            mf = np.array([records[j].mem_fraction for j in task_j])
            cpu_cap = np.repeat(cl * p.cpu_overage_factor, t_counts)
            avg_c = np.clip(np.repeat(cl * cf, t_counts) * diurnal * noise,
                            0.0, cpu_cap)
            burst = np.maximum(1.0, burst_raw)
            max_c = np.clip(avg_c * burst, avg_c, cpu_cap)
            ml_rep = np.repeat(ml, t_counts)
            avg_m = np.clip(np.repeat(ml * mf, t_counts) * mem_noise,
                            0.0, ml_rep)
            mem_burst = np.maximum(1.0, mem_burst_raw)
            max_m = np.clip(avg_m * mem_burst, avg_m, ml_rep)

            # Autopilot limit trajectories are causal *within* one run
            # interval, so they stay per-interval; mode NONE (the common
            # case) is just the repeated request limit, already in place.
            cpu_lim_t = np.repeat(cl, t_counts)
            mem_lim_t = np.repeat(ml, t_counts)
            toff = 0
            for j, n in zip(task_j, t_count_list):
                r = records[j]
                if r.autopilot_code:
                    mode = AutopilotMode(AUTOPILOT_FROM_CODE[r.autopilot_code])
                    cpu_lim_t[toff:toff + n] = limit_trajectory(
                        mode, r.cpu_limit, max_c[toff:toff + n], self._autopilot)
                    mem_lim_t[toff:toff + n] = limit_trajectory(
                        mode, r.mem_limit, max_m[toff:toff + n], self._autopilot)
                toff += n

            avg_cpu[task_rows] = avg_c
            max_cpu[task_rows] = max_c
            avg_mem[task_rows] = avg_m
            max_mem[task_rows] = max_m
            cpu_limit[task_rows] = cpu_lim_t
            mem_limit[task_rows] = mem_lim_t

        return {
            "collection_id": rep([r.collection_id for r in records], np.int64),
            "instance_index": rep([r.instance_index for r in records], np.int32),
            "machine_id": rep([r.machine_id for r in records], np.int32),
            "tier_code": rep([r.tier_code for r in records], np.int8),
            "autopilot_code": rep([r.autopilot_code for r in records], np.int8),
            "in_alloc": rep([r.in_alloc for r in records], bool),
            "window_start": window_start,
            "duration": duration,
            "avg_cpu": avg_cpu,
            "max_cpu": max_cpu,
            "avg_mem": avg_mem,
            "max_mem": max_mem,
            "cpu_limit": cpu_limit,
            "mem_limit": mem_limit,
        }


def diurnal_rate_factor(t: float, utc_offset_hours: float,
                        amplitude: float = 0.25) -> float:
    """Diurnal scaling for arrival rates (peaks mid-afternoon local time).

    Shared by the workload generators so the load cycle the paper sees in
    section 4.1 (Singapore's cell g busy when US cells sleep) emerges
    from cell time zones.
    """
    local_hours = (t / HOUR_SECONDS + utc_offset_hours) % 24.0
    phase = 2.0 * np.pi * (local_hours - 15.0) / 24.0
    return 1.0 + amplitude * float(np.cos(phase))
