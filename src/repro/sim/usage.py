"""The per-instance resource usage model.

Real tasks use only a fraction of their requested limit, with diurnal
modulation and short-term noise; the 2019 trace records this as 5-minute
samples (average and maximum usage within each window).  This module
generates those samples for a completed run interval in one vectorized
pass, which is what keeps month-scale simulations tractable.

CPU is work-conserving (usage may burst past the limit); memory is a
hard bound (usage never exceeds the limit) — paper section 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.util.timeutil import HOUR_SECONDS, SAMPLE_PERIOD_SECONDS


@dataclass(frozen=True)
class UsageModelParams:
    """Knobs of the synthetic usage process."""

    #: Relative amplitude of the diurnal (24 h) usage cycle.
    diurnal_amplitude: float = 0.15
    #: Lognormal sigma of window-to-window multiplicative noise.
    noise_sigma: float = 0.18
    #: Mean ratio of within-window peak to within-window average.
    burst_mean: float = 1.25
    #: Spread of the peak/average ratio.
    burst_sigma: float = 0.12
    #: CPU usage may exceed the limit by up to this factor (work conserving).
    cpu_overage_factor: float = 1.15


class UsageModel:
    """Generates 5-minute usage samples for instance run intervals."""

    def __init__(self, params: Optional[UsageModelParams] = None,
                 sample_period: float = SAMPLE_PERIOD_SECONDS,
                 utc_offset_hours: float = 0.0):
        self.params = params or UsageModelParams()
        if sample_period <= 0:
            raise ValueError(f"sample_period must be positive, got {sample_period}")
        self.sample_period = sample_period
        self.utc_offset_hours = utc_offset_hours

    def window_starts(self, start: float, end: float) -> np.ndarray:
        """Grid-aligned sample-window start times covering [start, end)."""
        if end <= start:
            return np.empty(0)
        first = np.floor(start / self.sample_period) * self.sample_period
        return np.arange(first, end, self.sample_period)

    def _diurnal(self, t: np.ndarray) -> np.ndarray:
        """Multiplicative diurnal factor peaking mid-afternoon local time."""
        local_hours = (t / HOUR_SECONDS + self.utc_offset_hours) % 24.0
        phase = 2.0 * np.pi * (local_hours - 15.0) / 24.0
        return 1.0 + self.params.diurnal_amplitude * np.cos(phase)

    def sample_interval(self, rng: np.random.Generator, start: float, end: float,
                        cpu_limit: float, mem_limit: float,
                        cpu_fraction: float, mem_fraction: float) -> Dict[str, np.ndarray]:
        """Usage samples for one run interval.

        Returns a dict of equal-length arrays: ``window_start``,
        ``duration`` (seconds of the window actually overlapped by the
        run), ``avg_cpu``, ``max_cpu``, ``avg_mem``, ``max_mem``.
        """
        starts = self.window_starts(start, end)
        n = len(starts)
        if n == 0:
            return {k: np.empty(0) for k in
                    ("window_start", "duration", "avg_cpu", "max_cpu", "avg_mem", "max_mem")}
        p = self.params

        window_ends = np.minimum(starts + self.sample_period, end)
        window_begin = np.maximum(starts, start)
        duration = window_ends - window_begin

        diurnal = self._diurnal(starts + self.sample_period / 2.0)
        noise = rng.lognormal(mean=0.0, sigma=p.noise_sigma, size=n)
        avg_cpu = cpu_limit * cpu_fraction * diurnal * noise
        # CPU is work-conserving: clip at a soft overage above the limit.
        avg_cpu = np.clip(avg_cpu, 0.0, cpu_limit * p.cpu_overage_factor)

        burst = np.maximum(1.0, rng.normal(p.burst_mean, p.burst_sigma, size=n))
        max_cpu = np.clip(avg_cpu * burst, avg_cpu, cpu_limit * p.cpu_overage_factor)

        # Memory: slow random walk around the target fraction, hard-capped.
        mem_noise = rng.lognormal(mean=0.0, sigma=p.noise_sigma * 0.5, size=n)
        avg_mem = np.clip(mem_limit * mem_fraction * mem_noise, 0.0, mem_limit)
        mem_burst = np.maximum(1.0, rng.normal(1.05, 0.03, size=n))
        max_mem = np.clip(avg_mem * mem_burst, avg_mem, mem_limit)

        return {
            "window_start": starts,
            "duration": duration,
            "avg_cpu": avg_cpu,
            "max_cpu": max_cpu,
            "avg_mem": avg_mem,
            "max_mem": max_mem,
        }


def diurnal_rate_factor(t: float, utc_offset_hours: float,
                        amplitude: float = 0.25) -> float:
    """Diurnal scaling for arrival rates (peaks mid-afternoon local time).

    Shared by the workload generators so the load cycle the paper sees in
    section 4.1 (Singapore's cell g busy when US cells sleep) emerges
    from cell time zones.
    """
    local_hours = (t / HOUR_SECONDS + utc_offset_hours) % 24.0
    phase = 2.0 * np.pi * (local_hours - 15.0) / 24.0
    return 1.0 + amplitude * float(np.cos(phase))
