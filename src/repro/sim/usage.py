"""The per-instance resource usage model.

Real tasks use only a fraction of their requested limit, with diurnal
modulation and short-term noise; the 2019 trace records this as 5-minute
samples (average and maximum usage within each window).  This module
generates those samples for a completed run interval in one vectorized
pass, which is what keeps month-scale simulations tractable.

CPU is work-conserving (usage may burst past the limit); memory is a
hard bound (usage never exceeds the limit) — paper section 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional

import numpy as np

from repro.sim.autopilot import AutopilotParams, limit_trajectory_rows
from repro.sim.priority import Tier
from repro.util.timeutil import HOUR_SECONDS, SAMPLE_PERIOD_SECONDS

#: Integer tier codes used in the packed usage arrays.  A tier's code
#: IS its preemption rank — the simulator's hot path relies on this and
#: writes ``tier.rank`` directly instead of hashing an enum key here.
TIER_CODES = {tier: tier.rank for tier in Tier}
TIER_FROM_CODE = {v: k for k, v in TIER_CODES.items()}
AUTOPILOT_CODES = {"none": 0, "fully": 1, "constrained": 2}
AUTOPILOT_FROM_CODE = {v: k for k, v in AUTOPILOT_CODES.items()}


@dataclass(frozen=True)
class UsageModelParams:
    """Knobs of the synthetic usage process."""

    #: Relative amplitude of the diurnal (24 h) usage cycle.
    diurnal_amplitude: float = 0.15
    #: Lognormal sigma of window-to-window multiplicative noise.
    noise_sigma: float = 0.18
    #: Mean ratio of within-window peak to within-window average.
    burst_mean: float = 1.25
    #: Spread of the peak/average ratio.
    burst_sigma: float = 0.12
    #: CPU usage may exceed the limit by up to this factor (work conserving).
    cpu_overage_factor: float = 1.15
    #: Implementation knob, not a model parameter: draw all per-window
    #: noise from one fused standard-normal block per cell per flush
    #: (bit-identical to the per-interval reference path — see
    #: :class:`UsageBatch`).  Off by default: the fused block must
    #: re-derive the two lognormal streams from full-stream generator
    #: clones plus four block-wide gathers, which at paper scale (~100M
    #: draws) costs more than the per-interval draw loop it replaces —
    #: the batched-capture + one-vectorized-pass structure, shared by
    #: both settings, is where the speedup lives.  Kept selectable so
    #: the paper-scale bench can measure one kernel against the other.
    fused_sampling: bool = False


class UsageModel:
    """Generates 5-minute usage samples for instance run intervals."""

    def __init__(self, params: Optional[UsageModelParams] = None,
                 sample_period: float = SAMPLE_PERIOD_SECONDS,
                 utc_offset_hours: float = 0.0):
        self.params = params or UsageModelParams()
        if sample_period <= 0:
            raise ValueError(f"sample_period must be positive, got {sample_period}")
        self.sample_period = sample_period
        self.utc_offset_hours = utc_offset_hours

    def window_starts(self, start: float, end: float) -> np.ndarray:
        """Grid-aligned sample-window start times covering [start, end)."""
        if end <= start:
            return np.empty(0)
        first = np.floor(start / self.sample_period) * self.sample_period
        return np.arange(first, end, self.sample_period)

    def _diurnal(self, t: np.ndarray) -> np.ndarray:
        """Multiplicative diurnal factor peaking mid-afternoon local time."""
        local_hours = (t / HOUR_SECONDS + self.utc_offset_hours) % 24.0
        phase = 2.0 * np.pi * (local_hours - 15.0) / 24.0
        return 1.0 + self.params.diurnal_amplitude * np.cos(phase)

    def sample_interval(self, rng: np.random.Generator, start: float, end: float,
                        cpu_limit: float, mem_limit: float,
                        cpu_fraction: float, mem_fraction: float) -> Dict[str, np.ndarray]:
        """Usage samples for one run interval.

        Returns a dict of equal-length arrays: ``window_start``,
        ``duration`` (seconds of the window actually overlapped by the
        run), ``avg_cpu``, ``max_cpu``, ``avg_mem``, ``max_mem``.
        """
        starts = self.window_starts(start, end)
        n = len(starts)
        if n == 0:
            return {k: np.empty(0) for k in
                    ("window_start", "duration", "avg_cpu", "max_cpu", "avg_mem", "max_mem")}
        p = self.params

        window_ends = np.minimum(starts + self.sample_period, end)
        window_begin = np.maximum(starts, start)
        duration = window_ends - window_begin

        diurnal = self._diurnal(starts + self.sample_period / 2.0)
        noise = rng.lognormal(mean=0.0, sigma=p.noise_sigma, size=n)
        avg_cpu = cpu_limit * cpu_fraction * diurnal * noise
        # CPU is work-conserving: clip at a soft overage above the limit.
        avg_cpu = np.clip(avg_cpu, 0.0, cpu_limit * p.cpu_overage_factor)

        burst = np.maximum(1.0, rng.normal(p.burst_mean, p.burst_sigma, size=n))
        max_cpu = np.clip(avg_cpu * burst, avg_cpu, cpu_limit * p.cpu_overage_factor)

        # Memory: slow random walk around the target fraction, hard-capped.
        mem_noise = rng.lognormal(mean=0.0, sigma=p.noise_sigma * 0.5, size=n)
        avg_mem = np.clip(mem_limit * mem_fraction * mem_noise, 0.0, mem_limit)
        mem_burst = np.maximum(1.0, rng.normal(1.05, 0.03, size=n))
        max_mem = np.clip(avg_mem * mem_burst, avg_mem, mem_limit)

        return {
            "window_start": starts,
            "duration": duration,
            "avg_cpu": avg_cpu,
            "max_cpu": max_cpu,
            "avg_mem": avg_mem,
            "max_mem": max_mem,
        }


class _IntervalRecord(NamedTuple):
    """One closed run interval, queued for batched sample materialization.

    Every field is a scalar captured at stop time, so deferring the
    sampling to the end of the run cannot observe later mutations.
    """

    is_alloc: bool
    collection_id: int
    instance_index: int
    machine_id: int
    tier_code: int
    autopilot_code: int
    in_alloc: bool
    start: float
    end: float
    cpu_limit: float
    mem_limit: float
    cpu_fraction: float
    mem_fraction: float


#: Column indices of the packed (n_records, 13) float matrix ``finalize``
#: builds from the record list (field order of :class:`_IntervalRecord`).
_F_IS_ALLOC = _IntervalRecord._fields.index("is_alloc")
_F_COLLECTION_ID = _IntervalRecord._fields.index("collection_id")
_F_INSTANCE_INDEX = _IntervalRecord._fields.index("instance_index")
_F_MACHINE_ID = _IntervalRecord._fields.index("machine_id")
_F_TIER_CODE = _IntervalRecord._fields.index("tier_code")
_F_AUTOPILOT = _IntervalRecord._fields.index("autopilot_code")
_F_IN_ALLOC = _IntervalRecord._fields.index("in_alloc")
_F_START = _IntervalRecord._fields.index("start")
_F_END = _IntervalRecord._fields.index("end")
_F_CPU_LIMIT = _IntervalRecord._fields.index("cpu_limit")
_F_MEM_LIMIT = _IntervalRecord._fields.index("mem_limit")
_F_CPU_FRACTION = _IntervalRecord._fields.index("cpu_fraction")
_F_MEM_FRACTION = _IntervalRecord._fields.index("mem_fraction")


def _libm_exp(x: np.ndarray) -> np.ndarray:
    """``exp(x)`` through the C library's *scalar* ``exp``.

    ``Generator.lognormal`` exponentiates each normal draw with libm's
    ``exp``; numpy's vectorized ``np.exp`` uses a SIMD implementation
    that agrees only to within ULPs.  Mapping ``math.exp`` (the same
    libm symbol) keeps the fused RNG block bit-identical to the
    per-interval draws while staying ~15x cheaper than issuing
    per-interval ``Generator`` calls.
    """
    return np.fromiter(map(math.exp, x.tolist()), dtype=np.float64,
                       count=len(x))


class UsageBatch:
    """Accumulates run intervals and materializes usage samples in bulk.

    The simulator used to call :meth:`UsageModel.sample_interval` once per
    closed run interval (tens of thousands of small numpy calls per cell).
    ``UsageBatch`` instead records each interval as a scalar tuple and
    generates all sample columns in one vectorized pass at finalize time.

    Bit-exactness contract: the output is byte-identical to the
    per-interval path.  Three things make that hold:

    * One RNG block per cell per flush: a single
      ``rng.standard_normal(4 * n)`` call consumes exactly the bit
      stream the per-interval path consumed through its interleaved
      ``lognormal``/``normal`` calls (the generator fills normals
      element-by-element, so call partitioning never changes the
      drawn sequence), and the block is indexed back into the four
      per-interval streams (cpu noise, cpu burst, mem noise, mem
      burst) in record order.
    * ``normal(loc, scale, n)`` is exactly ``loc + scale * z``; but
      ``lognormal`` routes through the C library's scalar ``exp``,
      which a vectorized ``np.exp`` (SIMD) matches only to within
      ULPs.  The fused path therefore replays the identical normal
      stream through ``Generator.lognormal`` on two throwaway clones
      of the generator — numpy's C loop applies libm ``exp`` per draw
      — and gathers each stream's positions from the replayed block
      (:func:`_libm_exp` documents the equivalent ``math.exp`` map).
    * All arithmetic keeps the scalar path's operation order (e.g.
      ``(limit * fraction) * diurnal * noise``), with per-interval
      scalars broadcast via ``np.repeat``.

    ``UsageModelParams.fused_sampling`` selects which of two bit-equal
    draw kernels fills the four noise streams: the default blocked
    per-interval loop (4 ``Generator`` calls per record, zero redundant
    draws, no gathers), or the fused one-block kernel above.  Measured
    at paper scale (25.6M windows) the fused kernel loses: its clone
    replays generate 3x the random numbers (discarding 3/4 of each
    lognormal stream) and its four gathers touch ~800 MB arrays, which
    costs more than the ~1M small generator calls it eliminates.  Both
    kernels share the vectorized materialization tail — the part that
    actually replaced the old per-interval ``sample_interval`` calls
    and per-record autopilot loop.
    """

    COLUMNS = (
        "collection_id", "instance_index", "machine_id", "tier_code",
        "autopilot_code", "in_alloc", "window_start", "duration",
        "avg_cpu", "max_cpu", "avg_mem", "max_mem", "cpu_limit", "mem_limit",
    )

    def __init__(self, model: UsageModel, autopilot: AutopilotParams):
        self._model = model
        self._autopilot = autopilot
        self._records: List[_IntervalRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def add_task(self, *, collection_id: int, instance_index: int,
                 machine_id: int, tier_code: int, autopilot_code: int,
                 in_alloc: bool, start: float, end: float,
                 cpu_limit: float, mem_limit: float,
                 cpu_fraction: float, mem_fraction: float) -> None:
        """Queue a task run interval (samples drawn at finalize)."""
        self._records.append(_IntervalRecord(
            False, collection_id, instance_index, machine_id, tier_code,
            autopilot_code, in_alloc, start, end, cpu_limit, mem_limit,
            cpu_fraction, mem_fraction,
        ))

    def add_alloc(self, *, collection_id: int, instance_index: int,
                  machine_id: int, tier_code: int, autopilot_code: int,
                  start: float, end: float,
                  cpu_limit: float, mem_limit: float) -> None:
        """Queue an alloc-instance reservation interval (zero usage)."""
        self._records.append(_IntervalRecord(
            True, collection_id, instance_index, machine_id, tier_code,
            autopilot_code, False, start, end, cpu_limit, mem_limit,
            0.0, 0.0,
        ))

    def finalize(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        """Materialize all queued intervals into usage-sample columns."""
        model = self._model
        period = model.sample_period
        records = self._records
        if not records:
            return {c: np.empty(0) for c in self.COLUMNS}

        # One pass from the namedtuple list into a (n, 13) float matrix;
        # every scalar field (ints, bools, floats) is exact in float64.
        # Column slices replace the dozen per-field list comprehensions
        # the flush used to pay.
        rec = np.array(records, dtype=np.float64)
        start_arr = rec[:, _F_START]
        end_arr = rec[:, _F_END]
        # The grid :meth:`UsageModel.window_starts` builds per interval
        # is ``np.arange(first, end, period)``, which has
        # ``ceil((end - first) / period)`` elements and equals
        # ``first + k * period`` element-for-element — so the full
        # concatenated grid can be produced directly, without an arange
        # call per interval.
        first = np.floor(start_arr / period) * period
        counts = np.maximum(
            np.ceil((end_arr - first) / period).astype(np.int64), 0)
        n_rows = int(counts.sum())
        if n_rows == 0:
            return {c: np.empty(0) for c in self.COLUMNS}
        row_offsets = np.cumsum(counts) - counts
        within = np.arange(n_rows) - np.repeat(row_offsets, counts)
        window_start = np.repeat(first, counts) + within * period

        start_rep = np.repeat(start_arr, counts)
        end_rep = np.repeat(end_arr, counts)
        duration = (np.minimum(window_start + period, end_rep)
                    - np.maximum(window_start, start_rep))
        cpu_limit = np.repeat(rec[:, _F_CPU_LIMIT], counts)
        mem_limit = np.repeat(rec[:, _F_MEM_LIMIT], counts)
        avg_cpu = np.zeros(n_rows)
        max_cpu = np.zeros(n_rows)
        avg_mem = np.zeros(n_rows)
        max_mem = np.zeros(n_rows)

        task_j = np.flatnonzero(rec[:, _F_IS_ALLOC] == 0.0)
        if task_j.size:
            t_counts = counts[task_j]
            n_task = int(t_counts.sum())
            t_excl = np.cumsum(t_counts) - t_counts
            within_task = np.arange(n_task) - np.repeat(t_excl, t_counts)
            task_rows = (np.repeat(row_offsets[task_j] - t_excl, t_counts)
                         + np.arange(n_task))
            p = model.params
            noise_sigma = p.noise_sigma
            mem_sigma = p.noise_sigma * 0.5
            burst_mean, burst_sigma = p.burst_mean, p.burst_sigma
            if p.fused_sampling and n_task:
                # One RNG block per cell per flush.  The per-interval
                # path drew, for interval i with n_i windows, 4 * n_i
                # consecutive standard normals in stream order (noise,
                # burst, mem noise, mem burst); the block reproduces
                # that exact sequence, and the index arrays below
                # scatter it back into the four streams.
                #
                # The two lognormal streams need ``exp(sigma * z)``
                # computed by the *same* libm ``exp`` the generator's C
                # code applies (np.exp's SIMD kernel differs in the last
                # ULP; see :func:`_libm_exp`).  Rather than a Python-
                # level ``math.exp`` map, two clones of the generator
                # replay the identical normal stream through
                # ``Generator.lognormal`` — numpy's C loop applies libm
                # ``exp`` per draw, so ``clone.lognormal(0, sigma,
                # m)[i] == exp(sigma * z[i])`` bit-for-bit — and the
                # fused path gathers the positions belonging to each
                # stream.  Only the primary ``rng`` advances; the clones
                # are throwaways.
                state = rng.bit_generator.state
                clone_n = np.random.Generator(type(rng.bit_generator)())
                clone_n.bit_generator.state = state
                clone_m = np.random.Generator(type(rng.bit_generator)())
                clone_m.bit_generator.state = state
                z = rng.standard_normal(4 * n_task)
                base = np.repeat(4 * t_excl, t_counts) + within_task
                repc = np.repeat(t_counts, t_counts)
                noise = clone_n.lognormal(0.0, noise_sigma, 4 * n_task)[base]
                burst_raw = burst_mean + burst_sigma * z[base + repc]
                mem_noise = clone_m.lognormal(
                    0.0, mem_sigma, 4 * n_task)[base + 2 * repc]
                mem_burst_raw = 1.05 + 0.03 * z[base + 3 * repc]
                del z
            else:
                noise = np.empty(n_task)
                burst_raw = np.empty(n_task)
                mem_noise = np.empty(n_task)
                mem_burst_raw = np.empty(n_task)
                lognormal, normal = rng.lognormal, rng.normal
                off = 0
                for n in t_counts.tolist():
                    if n == 0:
                        # The per-interval path returned before drawing
                        # when the grid was empty; consume nothing here.
                        continue
                    # Four draws per interval, record order: the scalar
                    # path's exact RNG call sequence (class docstring).
                    end = off + n
                    noise[off:end] = lognormal(mean=0.0, sigma=noise_sigma,
                                               size=n)
                    burst_raw[off:end] = normal(burst_mean, burst_sigma,
                                                size=n)
                    mem_noise[off:end] = lognormal(mean=0.0, sigma=mem_sigma,
                                                   size=n)
                    mem_burst_raw[off:end] = normal(1.05, 0.03, size=n)
                    off = end

            diurnal = model._diurnal(window_start[task_rows] + period / 2.0)
            cl = rec[task_j, _F_CPU_LIMIT]
            ml = rec[task_j, _F_MEM_LIMIT]
            cf = rec[task_j, _F_CPU_FRACTION]
            mf = rec[task_j, _F_MEM_FRACTION]
            cpu_cap = np.repeat(cl * p.cpu_overage_factor, t_counts)
            avg_c = np.clip(np.repeat(cl * cf, t_counts) * diurnal * noise,
                            0.0, cpu_cap)
            burst = np.maximum(1.0, burst_raw)
            max_c = np.clip(avg_c * burst, avg_c, cpu_cap)
            ml_rep = np.repeat(ml, t_counts)
            avg_m = np.clip(np.repeat(ml * mf, t_counts) * mem_noise,
                            0.0, ml_rep)
            mem_burst = np.maximum(1.0, mem_burst_raw)
            max_m = np.clip(avg_m * mem_burst, avg_m, ml_rep)

            # Autopilot limit trajectories are causal *within* one run
            # interval; mode NONE (the common case) is just the repeated
            # request limit, already in place.  The flagged minority of
            # records runs through one row-vectorized controller pass
            # (bit-equal to per-record limit_trajectory calls) instead
            # of two Python calls per record.
            cpu_lim_t = np.repeat(cl, t_counts)
            mem_lim_t = np.repeat(ml, t_counts)
            ap_codes = rec[task_j, _F_AUTOPILOT]
            ap = np.flatnonzero(ap_codes)
            if ap.size:
                seg_counts = t_counts[ap]
                m = int(seg_counts.sum())
                if m:
                    excl = np.cumsum(seg_counts) - seg_counts
                    rows = (np.repeat(t_excl[ap] - excl, seg_counts)
                            + np.arange(m))
                    wpos = np.arange(m) - np.repeat(excl, seg_counts)
                    auto = self._autopilot
                    frac = np.where(
                        ap_codes[ap] == AUTOPILOT_CODES["fully"],
                        auto.min_limit_fraction_fully,
                        auto.min_limit_fraction_constrained)
                    frac_rows = np.repeat(frac, seg_counts)
                    init_c = np.repeat(cl[ap], seg_counts)
                    cpu_lim_t[rows] = limit_trajectory_rows(
                        wpos, max_c[rows], init_c, init_c * frac_rows, auto)
                    init_m = np.repeat(ml[ap], seg_counts)
                    mem_lim_t[rows] = limit_trajectory_rows(
                        wpos, max_m[rows], init_m, init_m * frac_rows, auto)

            avg_cpu[task_rows] = avg_c
            max_cpu[task_rows] = max_c
            avg_mem[task_rows] = avg_m
            max_mem[task_rows] = max_m
            cpu_limit[task_rows] = cpu_lim_t
            mem_limit[task_rows] = mem_lim_t

        def rep(col: int, dtype) -> np.ndarray:
            return np.repeat(rec[:, col].astype(dtype), counts)

        return {
            "collection_id": rep(_F_COLLECTION_ID, np.int64),
            "instance_index": rep(_F_INSTANCE_INDEX, np.int32),
            "machine_id": rep(_F_MACHINE_ID, np.int32),
            "tier_code": rep(_F_TIER_CODE, np.int8),
            "autopilot_code": rep(_F_AUTOPILOT, np.int8),
            "in_alloc": rep(_F_IN_ALLOC, bool),
            "window_start": window_start,
            "duration": duration,
            "avg_cpu": avg_cpu,
            "max_cpu": max_cpu,
            "avg_mem": avg_mem,
            "max_mem": max_mem,
            "cpu_limit": cpu_limit,
            "mem_limit": mem_limit,
        }


def diurnal_rate_factor(t: float, utc_offset_hours: float,
                        amplitude: float = 0.25) -> float:
    """Diurnal scaling for arrival rates (peaks mid-afternoon local time).

    Shared by the workload generators so the load cycle the paper sees in
    section 4.1 (Singapore's cell g busy when US cells sleep) emerges
    from cell time zones.
    """
    local_hours = (t / HOUR_SECONDS + utc_offset_hours) % 24.0
    phase = 2.0 * np.pi * (local_hours - 15.0) / 24.0
    return 1.0 + amplitude * float(np.cos(phase))
