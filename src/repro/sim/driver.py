"""Parallel multi-cell run driver.

Cell simulations are embarrassingly parallel: each
:class:`~repro.workload.scenarios.CellScenario` carries its own config,
fleet, workload and seed, and two cells never share mutable state.
:func:`run_cells` fans a batch of scenarios out over a
``multiprocessing`` pool (one task per cell, results in input order),
reusing the store executor's fork-safety pattern for observability:
every worker runs its scenario inside a *fresh* scoped
:mod:`repro.obs` registry and ships the resulting
:class:`~repro.obs.Snapshot` home with the payload, and the parent
merges each snapshot exactly once, in task order.  Counters, gauges and
span trees therefore agree between ``workers=1`` and ``workers=N`` —
and so do the simulated traces themselves, because each cell's RNG is
derived only from its scenario seed (see the driver determinism test).
"""

from __future__ import annotations

import multiprocessing
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro import obs
from repro.sim.cell import CellResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.workload.scenarios import CellScenario


def run_scenario(scenario: CellScenario) -> CellResult:
    """Run one scenario to its horizon (the serial path / worker body)."""
    return scenario.run()


def traced_scenario_task(scenario: CellScenario) -> Tuple[CellResult,
                                                          obs.Snapshot]:
    """Worker-side wrapper: simulate one cell inside a fresh scoped
    registry and return its metrics delta alongside the result.

    Under ``fork`` start methods the worker begins with a copy of the
    parent's registry; recording into that copy and snapshotting it
    wholesale would re-count everything the parent had already recorded.
    The fresh scoped registry makes the returned snapshot exactly the
    delta of this one cell run, so the parent can merge each snapshot
    once — no double counts, no drops.
    """
    with obs.scoped_registry() as registry:
        result = run_scenario(scenario)
    return result, registry.snapshot()


def run_cells(scenarios: Sequence[CellScenario],
              workers: Optional[int] = None) -> List[CellResult]:
    """Simulate cells, fanning out over processes when it pays off.

    ``workers=None`` or ``<= 1`` runs inline; otherwise a pool of
    ``min(workers, len(scenarios))`` processes maps over the scenarios
    with ``chunksize=1`` (cells are few and coarse — static chunking
    would serialize the longest cells behind each other).  Results come
    back in input order regardless of completion order, and worker-side
    obs metrics are merged into this process's registry in task order
    (exactly once per cell), so metrics agree between serial and
    parallel runs.
    """
    if not scenarios:
        return []
    if workers is None or workers <= 1 or len(scenarios) == 1:
        return [run_scenario(scenario) for scenario in scenarios]
    n = min(workers, len(scenarios))
    obs.gauge("sim.pool_workers", n)
    obs.inc("sim.parallel_batches")
    with multiprocessing.Pool(processes=n) as pool:
        traced = pool.map(traced_scenario_task, scenarios, chunksize=1)
    registry = obs.get_registry()
    for _, snapshot in traced:
        registry.merge_snapshot(snapshot)
    return [result for result, _ in traced]


def default_workers() -> int:
    """A sensible pool size: all-but-one CPU, at least one."""
    return max(1, (multiprocessing.cpu_count() or 2) - 1)
