"""Parallel multi-cell run driver.

Cell simulations are embarrassingly parallel: each
:class:`~repro.workload.scenarios.CellScenario` carries its own config,
fleet, workload and seed, and two cells never share mutable state.
:func:`run_cells` fans a batch of scenarios out over a
``multiprocessing`` pool (one task per cell, results in input order),
reusing the store executor's fork-safety pattern for observability:
every worker runs its scenario inside a *fresh* scoped
:mod:`repro.obs` registry and ships the resulting
:class:`~repro.obs.Snapshot` home with the payload, and the parent
merges each snapshot exactly once, in task order.  Counters, gauges and
span trees therefore agree between ``workers=1`` and ``workers=N`` —
and so do the simulated traces themselves, because each cell's RNG is
derived only from its scenario seed (see the driver determinism test).

Flight recording (``record=``) extends the same pattern: when a
:class:`~repro.obs.recorder.RunRecorder` is given, *every* cell —
serial or pooled — runs inside a fresh scoped registry, so the frames
each cell's :class:`~repro.obs.recorder.CellRecorder` samples are
exactly that cell's metrics delta, and the recorded frame payloads are
identical between serial and ``--workers N`` execution.  Serial cells
stream frames straight into the sink as they are sampled; pooled cells
collect frames worker-side and the parent appends each batch as its
cell completes (``imap`` keeps the merge in scenario order).
"""

from __future__ import annotations

import functools
import multiprocessing
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro import obs
from repro.obs.recorder import CellRecorder, RunRecorder
from repro.sim.cell import CellResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.workload.scenarios import CellScenario


def run_scenario(scenario: CellScenario,
                 recorder: Optional[CellRecorder] = None) -> CellResult:
    """Run one scenario to its horizon (the serial path / worker body)."""
    return scenario.run(recorder=recorder)


def traced_scenario_task(scenario: CellScenario) -> Tuple[CellResult,
                                                          obs.Snapshot]:
    """Worker-side wrapper: simulate one cell inside a fresh scoped
    registry and return its metrics delta alongside the result.

    Under ``fork`` start methods the worker begins with a copy of the
    parent's registry; recording into that copy and snapshotting it
    wholesale would re-count everything the parent had already recorded.
    The fresh scoped registry makes the returned snapshot exactly the
    delta of this one cell run, so the parent can merge each snapshot
    once — no double counts, no drops.
    """
    with obs.scoped_registry() as registry:
        result = run_scenario(scenario)
    return result, registry.snapshot()


def recorded_scenario_task(scenario: CellScenario, interval: float
                           ) -> Tuple[CellResult, obs.Snapshot, List[dict]]:
    """Worker-side wrapper for recorded runs: also return the cell's
    flight-recorder frames (collected in memory, merged by the parent
    in task order)."""
    cell_rec = CellRecorder(scenario.name, interval=interval)
    with obs.scoped_registry() as registry:
        result = run_scenario(scenario, recorder=cell_rec)
    return result, registry.snapshot(), cell_rec.frames


def run_cells(scenarios: Sequence[CellScenario],
              workers: Optional[int] = None,
              record: Optional[RunRecorder] = None) -> List[CellResult]:
    """Simulate cells, fanning out over processes when it pays off.

    ``workers=None`` or ``<= 1`` runs inline; otherwise a pool of
    ``min(workers, len(scenarios))`` processes maps over the scenarios
    with ``chunksize=1`` (cells are few and coarse — static chunking
    would serialize the longest cells behind each other).  Results come
    back in input order regardless of completion order, and worker-side
    obs metrics are merged into this process's registry in task order
    (exactly once per cell), so metrics agree between serial and
    parallel runs.

    With ``record`` set, frames land in the recorder's sink in scenario
    order in both modes; the caller still owns
    :meth:`RunRecorder.finalize`/``close`` (the final frame should be
    sampled after trace encoding so it matches the obs report).
    """
    if not scenarios:
        # Zero cells is a legal (if degenerate) campaign/CLI input: no
        # pool, no idle workers — but a recording run still gets its
        # sink flushed so the frames file is complete and parseable.
        if record is not None:
            record.sink.flush()
        return []
    # ``workers`` <= 1 (including 0 and negatives) means serial, and a
    # pool never exceeds the scenario count: requesting ``--workers 8``
    # for 3 cells spawns 3 processes, not 8 with 5 idle.
    serial = workers is None or workers <= 1 or len(scenarios) == 1
    if record is None:
        if serial:
            return [run_scenario(scenario) for scenario in scenarios]
        n = min(workers, len(scenarios))
        obs.gauge("sim.pool_workers", n)
        obs.inc("sim.parallel_batches")
        with multiprocessing.Pool(processes=n) as pool:
            traced = pool.map(traced_scenario_task, scenarios, chunksize=1)
        registry = obs.get_registry()
        for _, snapshot in traced:
            registry.merge_snapshot(snapshot)
        return [result for result, _ in traced]

    # Recording: scope one fresh registry per cell in every mode, so the
    # sampled frames are each cell's own delta (serial == pooled), and
    # merge the snapshots exactly once, in scenario order, as always.
    registry = obs.get_registry()
    results: List[CellResult] = []
    if serial:
        for scenario in scenarios:
            cell_rec = record.for_cell(scenario.name)
            with obs.scoped_registry() as scoped:
                results.append(run_scenario(scenario, recorder=cell_rec))
            registry.merge_snapshot(scoped.snapshot())
        record.sink.flush()
        return results
    n = min(workers, len(scenarios))
    obs.gauge("sim.pool_workers", n)
    obs.inc("sim.parallel_batches")
    task = functools.partial(recorded_scenario_task, interval=record.interval)
    with multiprocessing.Pool(processes=n) as pool:
        for scenario, (result, snapshot, frames) in zip(
                scenarios, pool.imap(task, scenarios, chunksize=1)):
            registry.merge_snapshot(snapshot)
            record.merge_frames(frames, cell=scenario.name)
            results.append(result)
    record.sink.flush()
    return results


def default_workers() -> int:
    """A sensible pool size: all-but-one CPU, at least one."""
    return max(1, (multiprocessing.cpu_count() or 2) - 1)
