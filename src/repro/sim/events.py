"""The simulator's event log — the raw material of trace generation.

Event vocabulary follows the 2019 trace: SUBMIT, QUEUE, ENABLE,
SCHEDULE, EVICT, FAIL, FINISH, KILL, UPDATE_RUNNING (limit changes by
Autopilot), plus machine ADD/REMOVE events.  Collection events and
instance events are recorded in separate streams, exactly as the trace
separates ``collection_events`` and ``instance_events`` tables.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional


class EventType(enum.Enum):
    SUBMIT = "SUBMIT"
    QUEUE = "QUEUE"
    ENABLE = "ENABLE"
    SCHEDULE = "SCHEDULE"
    EVICT = "EVICT"
    FAIL = "FAIL"
    FINISH = "FINISH"
    KILL = "KILL"
    UPDATE_RUNNING = "UPDATE_RUNNING"

    @property
    def is_terminal(self) -> bool:
        return self in (EventType.EVICT, EventType.FAIL, EventType.FINISH, EventType.KILL)


#: Event types that terminate a collection or instance.
TERMINAL_EVENTS = frozenset(
    {EventType.EVICT, EventType.FAIL, EventType.FINISH, EventType.KILL}
)


@dataclass(frozen=True)
class CollectionEvent:
    time: float
    collection_id: int
    event: EventType
    collection_type: str      # "job" | "alloc_set"
    priority: int
    tier: str                 # "free" | "beb" | "mid" | "prod" | "monitoring"
    user: str
    scheduler: str            # "borg" | "batch"
    parent_id: int            # -1 when absent
    alloc_collection_id: int  # -1 when absent
    autopilot_mode: str       # "none" | "fully" | "constrained"
    constraint: str           # required machine platform; "" when absent
    num_instances: int


@dataclass(frozen=True)
class InstanceEvent:
    time: float
    collection_id: int
    instance_index: int
    event: EventType
    machine_id: int           # -1 when not placed
    priority: int
    tier: str
    cpu_request: float
    mem_request: float
    is_new: bool              # False for reschedules of previously-run work


@dataclass(frozen=True)
class MachineEvent:
    time: float
    machine_id: int
    event: str                # "ADD" | "REMOVE" | "UPDATE"
    cpu_capacity: float
    mem_capacity: float


class EventLog:
    """Append-only streams of collection, instance and machine events."""

    def __init__(self):
        self.collection_events: List[CollectionEvent] = []
        self.instance_events: List[InstanceEvent] = []
        self.machine_events: List[MachineEvent] = []

    def collection(self, time: float, collection, event: EventType) -> None:
        """Record a collection-level event."""
        self.collection_events.append(
            CollectionEvent(
                time=time,
                collection_id=collection.collection_id,
                event=event,
                collection_type=collection.collection_type.value,
                priority=collection.priority,
                tier=collection.tier.value,
                user=collection.user,
                scheduler=collection.scheduler.value,
                parent_id=collection.parent_id if collection.parent_id is not None else -1,
                alloc_collection_id=(
                    collection.alloc_collection_id
                    if collection.alloc_collection_id is not None
                    else -1
                ),
                autopilot_mode=collection.autopilot_mode,
                constraint=collection.constraint,
                num_instances=collection.num_instances,
            )
        )

    def instance(self, time: float, instance, event: EventType,
                 machine_id: Optional[int] = None, is_new: bool = True) -> None:
        """Record an instance-level event."""
        self.instance_events.append(
            InstanceEvent(
                time=time,
                collection_id=instance.collection.collection_id,
                instance_index=instance.index,
                event=event,
                machine_id=machine_id if machine_id is not None else -1,
                priority=instance.priority,
                tier=instance.tier.value,
                cpu_request=instance.request.cpu,
                mem_request=instance.request.mem,
                is_new=is_new,
            )
        )

    def machine(self, time: float, machine_id: int, event: str,
                cpu_capacity: float, mem_capacity: float) -> None:
        self.machine_events.append(
            MachineEvent(time, machine_id, event, cpu_capacity, mem_capacity)
        )

    def __len__(self) -> int:
        return (len(self.collection_events) + len(self.instance_events)
                + len(self.machine_events))
