"""The simulator's event log — the raw material of trace generation.

Event vocabulary follows the 2019 trace: SUBMIT, QUEUE, ENABLE,
SCHEDULE, EVICT, FAIL, FINISH, KILL, UPDATE_RUNNING (limit changes by
Autopilot), plus machine ADD/REMOVE events.  Collection events and
instance events are recorded in separate streams, exactly as the trace
separates ``collection_events`` and ``instance_events`` tables.
"""

from __future__ import annotations

import enum
from typing import List, NamedTuple, Optional

_tuple_new = tuple.__new__


class EventType(enum.Enum):
    SUBMIT = "SUBMIT"
    QUEUE = "QUEUE"
    ENABLE = "ENABLE"
    SCHEDULE = "SCHEDULE"
    EVICT = "EVICT"
    FAIL = "FAIL"
    FINISH = "FINISH"
    KILL = "KILL"
    UPDATE_RUNNING = "UPDATE_RUNNING"

    @property
    def is_terminal(self) -> bool:
        return self in (EventType.EVICT, EventType.FAIL, EventType.FINISH, EventType.KILL)


#: Event types that terminate a collection or instance.
TERMINAL_EVENTS = frozenset(
    {EventType.EVICT, EventType.FAIL, EventType.FINISH, EventType.KILL}
)




# The event records are NamedTuples rather than frozen dataclasses:
# millions of them are constructed per month-scale run, and tuple
# construction is several times cheaper than a frozen dataclass's
# __init__ + object.__setattr__ per field.  Attribute access (the only
# way consumers read them) is unchanged.
class CollectionEvent(NamedTuple):
    time: float
    collection_id: int
    event: EventType
    collection_type: str      # "job" | "alloc_set"
    priority: int
    tier: str                 # "free" | "beb" | "mid" | "prod" | "monitoring"
    user: str
    scheduler: str            # "borg" | "batch"
    parent_id: int            # -1 when absent
    alloc_collection_id: int  # -1 when absent
    autopilot_mode: str       # "none" | "fully" | "constrained"
    constraint: str           # required machine platform; "" when absent
    num_instances: int


class InstanceEvent(NamedTuple):
    time: float
    collection_id: int
    instance_index: int
    event: EventType
    machine_id: int           # -1 when not placed
    priority: int
    tier: str
    cpu_request: float
    mem_request: float
    is_new: bool              # False for reschedules of previously-run work


class MachineEvent(NamedTuple):
    time: float
    machine_id: int
    event: str                # "ADD" | "REMOVE" | "UPDATE"
    cpu_capacity: float
    mem_capacity: float


class ResubmitEvent(NamedTuple):
    """Provenance of one resubmission: which failed job it retries.

    The resubmitted collection appears in the ordinary collection/
    instance streams as a brand-new SUBMIT (that is how the real trace
    shows resubmissions — fresh collection ids); this side stream is
    what lets analyses stitch chains back together.
    """

    time: float               # when the resubmission entered the cell
    collection_id: int        # the new (resubmitted) collection
    prev_collection_id: int   # the failed collection it retries
    root_collection_id: int   # the chain's original collection
    attempt: int              # 1-based resubmission attempt number
    delay: float              # backoff that preceded this resubmission
    user: str
    tier: str


class EventLog:
    """Append-only streams of collection, instance and machine events.

    The record constructors here spell ``tuple.__new__(Cls, (...))``
    instead of ``Cls(...)``: a NamedTuple's generated ``__new__`` is a
    Python-level wrapper around exactly that call, and these two methods
    are the hottest constructors in a run.  The resulting objects are
    ordinary ``CollectionEvent``/``InstanceEvent`` instances.
    """

    def __init__(self):
        self.collection_events: List[CollectionEvent] = []
        self.instance_events: List[InstanceEvent] = []
        self.machine_events: List[MachineEvent] = []
        self.resubmit_events: List[ResubmitEvent] = []

    def collection(self, time: float, collection, event: EventType) -> None:
        """Record a collection-level event."""
        parent_id = collection.parent_id
        alloc_id = collection.alloc_collection_id
        self.collection_events.append(
            _tuple_new(
                CollectionEvent,
                (
                    time,
                    collection.collection_id,
                    event,
                    # ._value_ is the member's plain value attribute; the
                    # public .value spelling routes through
                    # DynamicClassAttribute.__get__, a descriptor call the
                    # event hot path makes millions of times per run.
                    collection.collection_type._value_,
                    collection.priority,
                    collection.tier._value_,
                    collection.user,
                    collection.scheduler._value_,
                    parent_id if parent_id is not None else -1,
                    alloc_id if alloc_id is not None else -1,
                    collection.autopilot_mode,
                    collection.constraint,
                    collection.num_instances,
                ),
            )
        )

    def instance(self, time: float, instance, event: EventType,
                 machine_id: Optional[int] = None, is_new: bool = True) -> None:
        """Record an instance-level event."""
        request = instance.request
        # One collection fetch instead of three property hops: .priority
        # and .tier on Instance are delegating properties, and this is
        # the hottest event constructor in a run.
        collection = instance.collection
        self.instance_events.append(
            _tuple_new(
                InstanceEvent,
                (
                    time,
                    collection.collection_id,
                    instance.index,
                    event,
                    machine_id if machine_id is not None else -1,
                    collection.priority,
                    collection.tier._value_,
                    request.cpu,
                    request.mem,
                    is_new,
                ),
            )
        )

    def crash_loop(self, time: float, instance, machine_id: int) -> None:
        """Record FAIL + SUBMIT + SCHEDULE of one in-place restart.

        The crash-loop churn of figure 9 emits these three records per
        fire, millions of times per paper-scale run; sharing the field
        reads across the triple is worth ~2/3 of the constructor cost
        compared with three :meth:`instance` calls.  The records are
        byte-identical to that spelling.
        """
        collection = instance.collection
        request = instance.request
        cid = collection.collection_id
        index = instance.index
        priority = collection.priority
        tier = collection.tier._value_
        cpu = request.cpu
        mem = request.mem
        append = self.instance_events.append
        append(_tuple_new(InstanceEvent, (
            time, cid, index, EventType.FAIL, machine_id,
            priority, tier, cpu, mem, False)))
        append(_tuple_new(InstanceEvent, (
            time, cid, index, EventType.SUBMIT, -1,
            priority, tier, cpu, mem, False)))
        append(_tuple_new(InstanceEvent, (
            time, cid, index, EventType.SCHEDULE, machine_id,
            priority, tier, cpu, mem, False)))

    def machine(self, time: float, machine_id: int, event: str,
                cpu_capacity: float, mem_capacity: float) -> None:
        self.machine_events.append(
            MachineEvent(time, machine_id, event, cpu_capacity, mem_capacity)
        )

    def resubmit(self, time: float, collection_id: int,
                 prev_collection_id: int, root_collection_id: int,
                 attempt: int, delay: float, user: str, tier: str) -> None:
        """Record resubmission provenance (fault injection only)."""
        self.resubmit_events.append(
            ResubmitEvent(time, collection_id, prev_collection_id,
                          root_collection_id, attempt, delay, user, tier)
        )

    def __len__(self) -> int:
        return (len(self.collection_events) + len(self.instance_events)
                + len(self.machine_events) + len(self.resubmit_events))
