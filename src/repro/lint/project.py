"""The whole-program lint driver: graph + flow + incremental cache.

:func:`lint_project` is what ``borg-repro lint`` actually runs.  It
extends the per-file driver (:func:`repro.lint.core.lint_source`) with
everything the flow rules need:

1. hash every file and split the set into *fresh* (cache hash matches)
   and *changed*;
2. dirty = changed ∪ reverse-import-closure(changed ∪ removed) — flow
   facts travel along import edges, so everything that can observe a
   change is re-analyzed and nothing else is;
3. parse dirty ∪ its forward dependency closure into a
   :class:`~repro.lint.graph.ProjectGraph` (analysis of a dirty file
   needs its dependencies' summaries, not the whole tree);
4. run every selected rule over each dirty file, timing each rule with
   :mod:`repro.obs` histograms; reuse cached violations for the rest;
5. write the cache back (content hashes, import edges, violations, and
   cross-module runtime-write facts for RPR009).

Suppression semantics are unchanged from per-file mode — and because
flow violations anchor at the *source* line (where taint enters the
file), a ``# repro: noqa[RPR008]`` is a judgement about one source: a
suppression on a sink line hides nothing, and two sources reaching the
same sink need two justifications.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro import obs
from repro.lint.cache import LintCache, cache_signature, file_digest
from repro.lint.core import (
    FileContext,
    Violation,
    _selected_rules,
    _suppressed,
    iter_python_files,
    parse_noqa,
)
from repro.lint.flow import FlowAnalysis, FlowSpec
from repro.lint.graph import ProjectGraph, extract_imports, module_name
from repro.obs.timing import TimingHistogram

import ast

#: Default cache location (kept out of the repo by .gitignore; CI
#: persists it between runs and main runs with --no-cache).
DEFAULT_CACHE_DIR = ".repro_lint_cache"


class ProjectContext:
    """What project-mode rules see via ``FileContext.project``."""

    def __init__(self, graph: ProjectGraph,
                 extra_global_writes: Optional[Set[Tuple[str, str]]] = None):
        self.graph = graph
        #: Runtime-write facts ``(module, global)`` recovered from cache
        #: entries of files *not* parsed this run (see RPR009).
        self.extra_global_writes: Set[Tuple[str, str]] = \
            extra_global_writes or set()
        self._memo: Dict[str, object] = {}

    def flow(self, spec: FlowSpec) -> FlowAnalysis:
        """The (memoized) taint fixpoint for one flow spec."""
        key = f"flow.{spec.rule_id}"
        if key not in self._memo:
            self._memo[key] = FlowAnalysis(self.graph, spec)
        return self._memo[key]  # type: ignore[return-value]

    def memo(self, key: str, factory):
        """Generic once-per-project memo for rule-owned analyses."""
        if key not in self._memo:
            self._memo[key] = factory()
        return self._memo[key]


@dataclass
class ProjectLintResult:
    """Everything the CLI reports: findings plus incremental accounting."""

    violations: List[Violation]
    files_total: int
    files_analyzed: int
    files_reused: int
    #: rule id -> wall-time histogram over per-file check calls.
    timings: Dict[str, TimingHistogram] = field(default_factory=dict)
    analyzed_paths: List[str] = field(default_factory=list)


def _violation_from_dict(data: dict) -> Violation:
    return Violation(str(data["rule"]), str(data["path"]), int(data["line"]),
                     int(data["column"]), str(data["message"]))


def lint_project(paths: Iterable[Union[str, Path]],
                 select: Optional[Sequence[str]] = None,
                 cache_dir: Optional[Union[str, Path]] = DEFAULT_CACHE_DIR,
                 use_cache: bool = True,
                 changed_only: bool = False) -> ProjectLintResult:
    """Lint ``paths`` with whole-program rules and incremental caching.

    ``use_cache=False`` ignores and does not write the cache (every
    file is analyzed).  ``changed_only=True`` restricts *reporting* to
    the files analyzed this run (the dirty set) — the PR fast path;
    the cache is still updated for everything.
    """
    checkers = _selected_rules(select)
    rule_ids = [type(c).id for c in checkers]
    signature = cache_signature(rule_ids, [type(c).summary for c in checkers])

    files = list(iter_python_files(paths))
    sources: Dict[str, str] = {}
    digests: Dict[str, str] = {}
    for path in files:
        text = path.read_text(encoding="utf-8")
        sources[str(path)] = text
        digests[str(path)] = file_digest(text)

    caching = use_cache and cache_dir is not None
    cache = LintCache(Path(cache_dir or DEFAULT_CACHE_DIR), signature)
    if caching:
        cache.load()

    path_strs = [str(p) for p in files]
    modnames = {s: module_name(Path(s)) for s in path_strs}
    known_modules = set(modnames.values())

    changed = [s for s in path_strs if not cache.is_fresh(s, digests[s])]
    removed_modules = {entry.get("module", "")
                       for path, entry in cache.entries.items()
                       if path not in sources}

    # Import edges for every current file: cached for fresh files,
    # freshly parsed for changed ones (trees kept for the graph).
    imports_by_module: Dict[str, Set[str]] = {}
    changed_trees: Dict[str, Optional[ast.Module]] = {}
    for s in path_strs:
        name = modnames[s]
        if s not in changed:
            entry = cache.entry(s) or {}
            imports_by_module[name] = set(entry.get("imports", ()))
            continue
        try:
            tree = ast.parse(sources[s], filename=s)
        except SyntaxError:
            tree = None
        changed_trees[s] = tree
        if tree is None:
            imports_by_module[name] = set()
        else:
            package = name if Path(s).name == "__init__.py" \
                else name.rpartition(".")[0]
            imports_by_module[name] = extract_imports(tree, package,
                                                      known_modules)

    importers: Dict[str, Set[str]] = {}
    for name, deps in imports_by_module.items():
        for dep in deps:
            importers.setdefault(dep, set()).add(name)

    dirty_modules: Set[str] = set()
    frontier = [modnames[s] for s in changed] + sorted(removed_modules)
    while frontier:
        current = frontier.pop()
        if current in dirty_modules:
            continue
        dirty_modules.add(current)
        frontier.extend(importers.get(current, ()))

    parse_modules: Set[str] = set()
    frontier = sorted(dirty_modules)
    while frontier:
        current = frontier.pop()
        if current in parse_modules:
            continue
        parse_modules.add(current)
        frontier.extend(imports_by_module.get(current, ()))

    dirty_paths = sorted(s for s in path_strs if modnames[s] in dirty_modules)

    graph = ProjectGraph()
    for name in known_modules:
        graph.declare_module(name)
    for s in path_strs:
        if modnames[s] in parse_modules:
            graph.add_source(Path(s), sources[s])
    graph.link()

    extra_writes: Set[Tuple[str, str]] = set()
    for s in path_strs:
        if modnames[s] in parse_modules:
            continue
        entry = cache.entry(s) or {}
        for item in entry.get("global_writes", ()):
            module_part, _, var = str(item).rpartition(":")
            extra_writes.add((module_part, var))
    context = ProjectContext(graph, extra_global_writes=extra_writes)

    timings: Dict[str, TimingHistogram] = {tid: TimingHistogram()
                                           for tid in rule_ids}

    def timed(rule_id: str, fn):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        timings[rule_id].observe(elapsed)
        obs.observe(f"lint.rule.{rule_id}", elapsed)
        return result

    if dirty_paths:
        for checker in checkers:
            warm = getattr(checker, "warm", None)
            if warm is not None:
                timed(type(checker).id, lambda w=warm: w(context))

    violations: List[Violation] = []
    fresh_count = 0
    with obs.span("lint.project"):
        for s in dirty_paths:
            file_violations = _analyze_file(s, sources[s], context, checkers,
                                            changed_trees, timed)
            violations.extend(file_violations)
            cache.put(s, digests[s], modnames[s],
                      sorted(imports_by_module.get(modnames[s], ())),
                      [v.to_dict() for v in file_violations])
        for s in path_strs:
            if modnames[s] in dirty_modules:
                continue
            fresh_count += 1
            if not changed_only:
                entry = cache.entry(s) or {}
                violations.extend(_violation_from_dict(v)
                                  for v in entry.get("violations", ()))

    share = context._memo.get("rpr009.share")
    if share is not None:
        writes_by_module = getattr(share, "writes_by_module", {})
        for s in dirty_paths:
            entry = cache.entry(s)
            if entry is not None:
                entry["global_writes"] = sorted(
                    f"{mod}:{var}"
                    for mod, var in writes_by_module.get(modnames[s], ()))

    if caching:
        cache.prune(path_strs)
        cache.save()

    violations.sort(key=lambda v: (v.path, v.line, v.column, v.rule))
    obs.inc("lint.files_analyzed", len(dirty_paths))
    obs.inc("lint.files_reused", fresh_count)
    return ProjectLintResult(
        violations=violations,
        files_total=len(dirty_paths) if changed_only else len(path_strs),
        files_analyzed=len(dirty_paths),
        files_reused=fresh_count,
        timings=timings,
        analyzed_paths=dirty_paths,
    )


def _analyze_file(path_str: str, source: str, context: ProjectContext,
                  checkers, changed_trees, timed) -> List[Violation]:
    path = Path(path_str)
    if path_str in changed_trees:
        tree = changed_trees[path_str]
    else:
        info = context.graph.module_for_path(path)
        tree = info.tree if info is not None else None
    if tree is None:
        try:
            tree = ast.parse(source, filename=path_str)
        except SyntaxError as exc:
            return [Violation("RPR000", path_str, exc.lineno or 1,
                              (exc.offset or 0) or 1,
                              f"syntax error: {exc.msg}")]
    file_context = FileContext(path=path, source=source, tree=tree,
                               noqa=parse_noqa(source), project=context)
    out: List[Violation] = []
    for checker in checkers:
        rule_id = type(checker).id
        found = timed(rule_id,
                      lambda c=checker: list(c.check(file_context)))
        out.extend(v for v in found
                   if not _suppressed(v, file_context.noqa))
    out.sort(key=lambda v: (v.line, v.column, v.rule))
    return out
