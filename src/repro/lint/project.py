"""The whole-program lint driver: graph + flow + incremental cache.

:func:`lint_project` is what ``borg-repro lint`` actually runs.  It
extends the per-file driver (:func:`repro.lint.core.lint_source`) with
everything the flow rules need:

1. hash every file and split the set into *fresh* (cache hash matches)
   and *changed*;
2. dirty = changed ∪ reverse-import-closure(changed ∪ removed) — the
   forward-flow facts (RPR008/RPR010 taint, symbol resolution) travel
   along import edges, so everything that can observe a change is
   re-analyzed and nothing else is;
3. parse dirty ∪ its forward dependency closure into a
   :class:`~repro.lint.graph.ProjectGraph` (analysis of a dirty file
   needs its dependencies' summaries, not the whole tree);
4. run every selected rule over each dirty file, timing each rule with
   :mod:`repro.obs` histograms; reuse cached violations for the rest —
   *except* RPR009, whose facts flow against import edges (the
   submission site importing the worker decides the worker's verdict).
   Its verdict map is recomputed globally every run from per-file fact
   summaries (fresh for parsed files, cached for unchanged ones), and
   any non-dirty file whose RPR009 verdicts changed is *promoted*: its
   cache entry is rewritten and it is reported as analyzed.  Warm
   verdicts therefore match cold ones by construction;
5. write the cache back (content hashes, import edges, violations, and
   RPR009 fact summaries).

Suppression semantics are unchanged from per-file mode — and because
flow violations anchor at the *source* line (where taint enters the
file), a ``# repro: noqa[RPR008]`` is a judgement about one source: a
suppression on a sink line hides nothing, and two sources reaching the
same sink need two justifications.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Union,
)

from repro import obs
from repro.lint.cache import LintCache, cache_signature, file_digest
from repro.lint.core import (
    FileContext,
    Violation,
    _selected_rules,
    _suppressed,
    iter_python_files,
    parse_noqa,
)
from repro.lint.flow import FlowAnalysis, FlowSpec
from repro.lint.graph import ProjectGraph, extract_imports, module_name
from repro.lint.rules import fork_share
from repro.obs.timing import TimingHistogram

import ast

#: Default cache location (kept out of the repo by .gitignore; CI
#: persists it between runs and main runs with --no-cache).
DEFAULT_CACHE_DIR = ".repro_lint_cache"


class ProjectContext:
    """What project-mode rules see via ``FileContext.project``."""

    def __init__(self, graph: ProjectGraph,
                 share_summaries: Optional[Dict[str, Dict[str, object]]]
                 = None):
        self.graph = graph
        #: module name -> RPR009 fact summary, for *every* current file
        #: (fresh for parsed files, cache-recovered for the rest); the
        #: global fork-share analysis is a pure function of this map.
        self.share_summaries: Dict[str, Dict[str, object]] = \
            share_summaries or {}
        self._memo: Dict[str, object] = {}

    def flow(self, spec: FlowSpec) -> FlowAnalysis:
        """The (memoized) taint fixpoint for one flow spec."""
        key = f"flow.{spec.rule_id}"
        if key not in self._memo:
            self._memo[key] = FlowAnalysis(self.graph, spec)
        return self._memo[key]  # type: ignore[return-value]

    def memo(self, key: str, factory: Callable[[], object]) -> object:
        """Generic once-per-project memo for rule-owned analyses."""
        if key not in self._memo:
            self._memo[key] = factory()
        return self._memo[key]


@dataclass
class ProjectLintResult:
    """Everything the CLI reports: findings plus incremental accounting."""

    violations: List[Violation]
    files_total: int
    files_analyzed: int
    files_reused: int
    #: rule id -> wall-time histogram over per-file check calls.
    timings: Dict[str, TimingHistogram] = field(default_factory=dict)
    analyzed_paths: List[str] = field(default_factory=list)


def _violation_from_dict(data: dict) -> Violation:
    return Violation(str(data["rule"]), str(data["path"]), int(data["line"]),
                     int(data["column"]), str(data["message"]))


def _module_names(path_strs: Sequence[str]) -> Dict[str, str]:
    """path -> dotted module name, disambiguated on collision.

    Two lint-set files can resolve to the same dotted name (same-stem
    scripts in different non-package directories, e.g. ``tests/x.py``
    vs ``benchmarks/x.py``).  The first occurrence keeps the plain name
    (and stays import-resolvable); later ones get a path-derived unique
    suffix so per-module bookkeeping (import edges, dirty state, fact
    summaries) never silently collides.  The ``@`` can never appear in
    a real dotted name, so disambiguated modules are unreachable from
    ``extract_imports`` — deliberately conservative.
    """
    out: Dict[str, str] = {}
    taken: Set[str] = set()
    for s in path_strs:
        name = module_name(Path(s))
        if name in taken:
            name = f"{name}@{file_digest(s)[:8]}"
        taken.add(name)
        out[s] = name
    return out


def _share_violations(analysis: "fork_share._ShareAnalysis",
                      module: str, path_str: str,
                      source: str) -> List[Violation]:
    """RPR009 violations for one file, derived from the global verdict
    map with the same suppression semantics as :func:`_analyze_file`."""
    noqa = parse_noqa(source)
    found = [Violation("RPR009", path_str, hit.line, hit.col, hit.message)
             for hit in analysis.hits_by_module.get(module, [])]
    out = [v for v in found if not _suppressed(v, noqa)]
    out.sort(key=lambda v: (v.line, v.column, v.rule))
    return out


def lint_project(paths: Iterable[Union[str, Path]],
                 select: Optional[Sequence[str]] = None,
                 cache_dir: Optional[Union[str, Path]] = DEFAULT_CACHE_DIR,
                 use_cache: bool = True,
                 changed_only: bool = False) -> ProjectLintResult:
    """Lint ``paths`` with whole-program rules and incremental caching.

    ``use_cache=False`` ignores and does not write the cache (every
    file is analyzed).  ``changed_only=True`` restricts *reporting* to
    the files whose verdicts were (re)computed this run — the dirty set
    plus any file promoted by RPR009 reconciliation — the PR fast path;
    the cache is still updated for everything.
    """
    checkers = _selected_rules(select)
    rule_ids = [type(c).id for c in checkers]
    signature = cache_signature(rule_ids, [type(c).summary for c in checkers])
    needs_share = "RPR009" in rule_ids

    files = list(iter_python_files(paths))
    sources: Dict[str, str] = {}
    digests: Dict[str, str] = {}
    for path in files:
        text = path.read_text(encoding="utf-8")
        sources[str(path)] = text
        digests[str(path)] = file_digest(text)

    caching = use_cache and cache_dir is not None
    cache = LintCache(Path(cache_dir or DEFAULT_CACHE_DIR), signature)
    if caching:
        cache.load()

    path_strs = [str(p) for p in files]
    modnames = _module_names(path_strs)
    known_modules = set(modnames.values())

    def entry_fresh(s: str) -> bool:
        if not cache.is_fresh(s, digests[s]):
            return False
        entry = cache.entry(s) or {}
        # A renamed module (collision reshuffle after files came or
        # went) invalidates its bookkeeping even with identical bytes.
        if entry.get("module") != modnames[s]:
            return False
        return not needs_share or isinstance(entry.get("rpr009"), dict)

    changed: Set[str] = {s for s in path_strs if not entry_fresh(s)}
    removed = [p for p in cache.entries if p not in sources]
    removed_modules = {cache.entries[p].get("module", "") for p in removed}

    # Import edges for every current file: cached for fresh files,
    # freshly parsed for changed ones (trees kept for the graph).
    imports_by_module: Dict[str, Set[str]] = {}
    changed_trees: Dict[str, Optional[ast.Module]] = {}
    for s in path_strs:
        name = modnames[s]
        if s not in changed:
            entry = cache.entry(s) or {}
            imports_by_module[name] = set(entry.get("imports", ()))
            continue
        try:
            tree = ast.parse(sources[s], filename=s)
        except SyntaxError:
            tree = None
        changed_trees[s] = tree
        if tree is None:
            imports_by_module[name] = set()
        else:
            package = name if Path(s).name == "__init__.py" \
                else name.rpartition(".")[0]
            imports_by_module[name] = extract_imports(tree, package,
                                                      known_modules)

    importers: Dict[str, Set[str]] = {}
    for name, deps in imports_by_module.items():
        for dep in deps:
            importers.setdefault(dep, set()).add(name)

    dirty_modules: Set[str] = set()
    frontier = sorted(modnames[s] for s in changed) + sorted(removed_modules)
    while frontier:
        current = frontier.pop()
        if current in dirty_modules:
            continue
        dirty_modules.add(current)
        frontier.extend(importers.get(current, ()))

    parse_modules: Set[str] = set()
    frontier = sorted(dirty_modules)
    while frontier:
        current = frontier.pop()
        if current in parse_modules:
            continue
        parse_modules.add(current)
        frontier.extend(imports_by_module.get(current, ()))

    dirty_paths = sorted(s for s in path_strs if modnames[s] in dirty_modules)

    graph = ProjectGraph()
    for name in known_modules:
        graph.declare_module(name)
    for s in path_strs:
        if modnames[s] in parse_modules:
            graph.add_source(Path(s), sources[s], name=modnames[s])
    graph.link()

    # RPR009 fact summaries for every current file: parsed files get a
    # fresh summary, unchanged unparsed ones recover theirs from cache
    # (valid because a summary depends only on the file and its forward
    # closure — exactly what the dirty rule invalidates on).
    share_summaries: Dict[str, Dict[str, object]] = {}
    if needs_share:
        for s in path_strs:
            name = modnames[s]
            info = graph.module_for_path(Path(s))
            if info is not None:
                share_summaries[name] = fork_share.summarize_module(info,
                                                                    graph)
                continue
            cached = (cache.entry(s) or {}).get("rpr009")
            if s not in changed and isinstance(cached, dict):
                share_summaries[name] = cached
            else:
                share_summaries[name] = fork_share.empty_summary()
    context = ProjectContext(graph, share_summaries=share_summaries)

    timings: Dict[str, TimingHistogram] = {tid: TimingHistogram()
                                           for tid in rule_ids}

    def timed(rule_id: str, fn: Callable[[], object]) -> object:
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        timings[rule_id].observe(elapsed)
        obs.observe(f"lint.rule.{rule_id}", elapsed)
        return result

    if dirty_paths:
        for checker in checkers:
            warm = getattr(checker, "warm", None)
            if warm is not None:
                timed(type(checker).id, lambda w=warm: w(context))

    # The global RPR009 verdict map must be rebuilt whenever anything
    # in the project changed — even when *no current file* is dirty
    # (e.g. a removed file carried the only pool submission).
    share_analysis: Optional["fork_share._ShareAnalysis"] = None
    if needs_share and (changed or removed):
        share_analysis = timed(
            "RPR009", lambda: fork_share.project_analysis(context)
        )  # type: ignore[assignment]

    violations: List[Violation] = []
    promoted: List[str] = []
    fresh_count = 0
    with obs.span("lint.project"):
        for s in dirty_paths:
            file_violations = _analyze_file(s, sources[s], context, checkers,
                                            changed_trees, timed)
            violations.extend(file_violations)
            cache.put(s, digests[s], modnames[s],
                      sorted(imports_by_module.get(modnames[s], ())),
                      [v.to_dict() for v in file_violations],
                      rpr009=share_summaries.get(modnames[s])
                      if needs_share else None)
        # RPR009 reconciliation: facts flow against import edges, so a
        # non-dirty file's cached verdict can be stale (its submitter
        # changed, or a writer of a global it reads did).  Re-derive
        # every non-dirty file's RPR009 verdicts from the global map
        # and promote the ones that differ.
        if share_analysis is not None:
            for s in path_strs:
                if modnames[s] in dirty_modules:
                    continue
                entry = cache.entry(s)
                if entry is None:
                    continue
                stored = [v for v in entry.get("violations", ())
                          if v.get("rule") == "RPR009"]
                derived = _share_violations(share_analysis, modnames[s], s,
                                            sources[s])
                if [v.to_dict() for v in derived] != stored:
                    merged = [v for v in entry.get("violations", ())
                              if v.get("rule") != "RPR009"]
                    merged += [v.to_dict() for v in derived]
                    merged.sort(key=lambda d: (d["line"], d["column"],
                                               d["rule"]))
                    entry["violations"] = merged
                    promoted.append(s)
        promoted_set = set(promoted)
        for s in path_strs:
            if modnames[s] in dirty_modules:
                continue
            entry = cache.entry(s) or {}
            if s in promoted_set:
                violations.extend(_violation_from_dict(v)
                                  for v in entry.get("violations", ()))
                continue
            fresh_count += 1
            if not changed_only:
                violations.extend(_violation_from_dict(v)
                                  for v in entry.get("violations", ()))

    if caching:
        cache.prune(path_strs)
        cache.save()

    analyzed_paths = sorted(set(dirty_paths) | promoted_set)
    violations.sort(key=lambda v: (v.path, v.line, v.column, v.rule))
    obs.inc("lint.files_analyzed", len(analyzed_paths))
    obs.inc("lint.files_reused", fresh_count)
    return ProjectLintResult(
        violations=violations,
        files_total=len(analyzed_paths) if changed_only else len(path_strs),
        files_analyzed=len(analyzed_paths),
        files_reused=fresh_count,
        timings=timings,
        analyzed_paths=analyzed_paths,
    )


def _analyze_file(path_str: str, source: str, context: ProjectContext,
                  checkers, changed_trees, timed) -> List[Violation]:
    path = Path(path_str)
    if path_str in changed_trees:
        tree = changed_trees[path_str]
    else:
        info = context.graph.module_for_path(path)
        tree = info.tree if info is not None else None
    if tree is None:
        try:
            tree = ast.parse(source, filename=path_str)
        except SyntaxError as exc:
            return [Violation("RPR000", path_str, exc.lineno or 1,
                              (exc.offset or 0) or 1,
                              f"syntax error: {exc.msg}")]
    file_context = FileContext(path=path, source=source, tree=tree,
                               noqa=parse_noqa(source), project=context)
    out: List[Violation] = []
    for checker in checkers:
        rule_id = type(checker).id
        found = timed(rule_id,
                      lambda c=checker: list(c.check(file_context)))
        out.extend(v for v in found
                   if not _suppressed(v, file_context.noqa))
    out.sort(key=lambda v: (v.line, v.column, v.rule))
    return out
