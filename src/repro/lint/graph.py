"""Project-wide import graph, symbol tables, and call resolution.

The per-file rules (RPR001-RPR007) see one AST at a time; the flow
rules (RPR008-RPR010) need to know what a call *refers to* across
module boundaries — ``from repro.util.timeutil import hours`` followed
by ``hours(x)`` is a call into another project module, and taint must
follow it.  :class:`ProjectGraph` parses every file under the lint
roots once and answers three questions:

* **imports** — which project modules does module M import (directly or
  transitively), and — the reverse index — who imports M?  The reverse
  closure is what the incremental cache invalidates through: editing
  ``repro/util/rng.py`` dirties every module that can observe it.
* **symbols** — which module-level functions and classes does M define,
  including re-exports (``repro/lint/__init__`` re-exporting
  ``lint_paths`` from ``repro.lint.core`` resolves to the defining
  module, following alias chains to a small depth).
* **calls** — given a ``Call`` node in M, which project function does it
  target?  Resolution is deliberately conservative: module-level
  functions, classes (constructors), and ``Class.method`` attribute
  chains through imports resolve; calls through arbitrary objects
  (``obj.method()``) do not, and simply fall off the graph rather than
  guessing.

Everything here is pure static analysis over source text — no project
module is ever imported.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.names import ImportMap, dotted_name

#: How many re-export hops (``from .core import f`` chains) to follow.
_MAX_ALIAS_DEPTH = 8


def module_name(path: Path) -> str:
    """Dotted module name of ``path``, found by walking up ``__init__.py``.

    ``src/repro/sim/cell.py`` -> ``repro.sim.cell`` (``src`` has no
    ``__init__.py``, so the package root is ``repro``); a bare script in
    a non-package directory is just its stem.
    """
    path = Path(path)
    parts: List[str] = [] if path.name == "__init__.py" else [path.stem]
    directory = path.resolve().parent
    while (directory / "__init__.py").exists():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts)


class ModuleInfo:
    """One parsed module: AST, imports, and module-level symbol table."""

    __slots__ = ("name", "path", "source", "tree", "import_map", "imports",
                 "functions", "classes", "global_values", "is_package")

    def __init__(self, name: str, path: Path, source: str, tree: ast.Module):
        self.name = name
        self.path = path
        self.source = source
        self.tree = tree
        self.is_package = path.name == "__init__.py"
        self.import_map = ImportMap(tree)
        #: Direct project-module dependencies (filled by the graph).
        self.imports: Set[str] = set()
        #: qualname -> def node; methods appear as ``Class.method``.
        self.functions: Dict[str, ast.AST] = {}
        self.classes: Dict[str, ast.ClassDef] = {}
        #: module-level ``NAME = <expr>`` assignments: name -> value node.
        self.global_values: Dict[str, ast.expr] = {}
        self._index()

    def _index(self) -> None:
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        self.functions[f"{node.name}.{item.name}"] = item
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.global_values[target.id] = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None \
                    and isinstance(node.target, ast.Name):
                self.global_values[node.target.id] = node.value

    def defines(self, name: str) -> bool:
        return (name in self.functions or name in self.classes
                or name in self.global_values)

    @property
    def package(self) -> str:
        """The package this module's relative imports resolve against."""
        if self.is_package:
            return self.name
        return self.name.rpartition(".")[0]


def extract_imports(tree: ast.Module, package: str,
                    known_modules: Set[str]) -> Set[str]:
    """Project modules directly imported by ``tree``.

    ``import a.b.c`` edges to the longest known prefix of ``a.b.c``;
    ``from m import x`` edges to ``m.x`` when that is itself a project
    module (importing a submodule) and to ``m`` when ``m`` is one
    (importing a symbol).  Relative imports resolve against ``package``.
    """
    edges: Set[str] = set()

    def add_longest_prefix(dotted: str) -> None:
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in known_modules:
                edges.add(candidate)
                return

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                add_longest_prefix(item.name)
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = package.split(".") if package else []
                anchor = anchor[:len(anchor) - (node.level - 1)] \
                    if node.level > 1 else anchor
                if not anchor:
                    continue
                base = ".".join(anchor + ([base] if base else []))
            if not base:
                continue
            for item in node.names:
                if item.name != "*" and f"{base}.{item.name}" in known_modules:
                    edges.add(f"{base}.{item.name}")
                else:
                    add_longest_prefix(base)
    return edges


class ProjectGraph:
    """All parsed modules plus import/reverse-import/call resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self._by_path: Dict[str, ModuleInfo] = {}
        #: Direct reverse-import edges: module -> modules importing it.
        self._importers: Dict[str, Set[str]] = {}
        #: All module names in the *project* (may exceed the parsed set
        #: in incremental runs, where unchanged modules stay unparsed).
        self.known_modules: Set[str] = set()

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, files: Iterable[Tuple[Path, str]]) -> "ProjectGraph":
        """Parse ``(path, source)`` pairs and wire the import edges."""
        graph = cls()
        parsed: List[ModuleInfo] = []
        for path, source in files:
            info = graph.add_source(path, source)
            if info is not None:
                parsed.append(info)
        graph.link()
        return graph

    def add_source(self, path: Path, source: str,
                   name: Optional[str] = None) -> Optional[ModuleInfo]:
        """Parse and register one module (skips files with syntax errors).

        ``name`` overrides the derived module name — the driver passes
        its collision-disambiguated name so two same-stem scripts in
        different non-package directories never overwrite each other's
        graph entry.
        """
        path = Path(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            return None
        info = ModuleInfo(name or module_name(path), path, source, tree)
        self.modules[info.name] = info
        self._by_path[str(path)] = info
        self.known_modules.add(info.name)
        return info

    def declare_module(self, name: str) -> None:
        """Register a module *name* without parsing it (incremental runs
        pass the full project's names so import edges resolve even when
        only a subset of files is parsed)."""
        self.known_modules.add(name)

    def link(self) -> None:
        """(Re)compute import edges for every parsed module."""
        self._importers = {}
        for info in self.modules.values():
            info.imports = extract_imports(info.tree, info.package,
                                           self.known_modules)
            info.imports.discard(info.name)
            for dep in info.imports:
                self._importers.setdefault(dep, set()).add(info.name)

    # -- lookups -------------------------------------------------------------

    def module_for_path(self, path: Path) -> Optional[ModuleInfo]:
        return self._by_path.get(str(path))

    def importers(self, name: str) -> Set[str]:
        """Modules that directly import ``name``."""
        return self._importers.get(name, set())

    def reverse_closure(self, names: Iterable[str]) -> Set[str]:
        """``names`` plus every module that transitively imports one."""
        out: Set[str] = set()
        frontier = list(names)
        while frontier:
            current = frontier.pop()
            if current in out:
                continue
            out.add(current)
            frontier.extend(self._importers.get(current, ()))
        return out

    def dependency_closure(self, names: Iterable[str]) -> Set[str]:
        """``names`` plus everything they transitively import."""
        out: Set[str] = set()
        frontier = list(names)
        while frontier:
            current = frontier.pop()
            if current in out:
                continue
            out.add(current)
            info = self.modules.get(current)
            if info is not None:
                frontier.extend(info.imports)
        return out

    # -- symbol / call resolution --------------------------------------------

    def resolve_symbol(self, dotted: str,
                       _depth: int = 0) -> Optional[Tuple[ModuleInfo, str]]:
        """``(module, qualname)`` a canonical dotted name refers to.

        Splits ``dotted`` at its longest project-module prefix, then
        looks the remainder up in that module's symbol table, following
        re-export aliases (``from repro.lint.core import rule``) up to
        :data:`_MAX_ALIAS_DEPTH` hops.
        """
        if _depth > _MAX_ALIAS_DEPTH:
            return None
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            prefix = ".".join(parts[:end])
            info = self.modules.get(prefix)
            if info is None:
                continue
            rest = parts[end:]
            if not rest:
                return (info, "")
            qual = ".".join(rest)
            if qual in info.functions or qual in info.classes \
                    or qual in info.global_values:
                return (info, qual)
            # Re-export: the first component is an import alias there.
            canonical = info.import_map.canonical(rest[0])
            if canonical is not None:
                chained = ".".join([canonical] + rest[1:])
                return self.resolve_symbol(chained, _depth + 1)
            return None
        return None

    def resolve_call(self, func: ast.AST,
                     module: ModuleInfo) -> Optional[Tuple[ModuleInfo, str]]:
        """The project function/class a call target refers to (or None).

        Handles local defs (``helper()``), imported symbols
        (``hours(x)`` after ``from repro.util.timeutil import hours``),
        and dotted chains through module imports
        (``timeutil.hours(x)``); calls through arbitrary runtime objects
        stay unresolved.
        """
        if isinstance(func, ast.Name):
            if module.import_map.canonical(func.id) is None \
                    and (func.id in module.functions
                         or func.id in module.classes):
                return (module, func.id)
        dotted = dotted_name(func)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        canonical_root = module.import_map.canonical(root)
        if canonical_root is not None:
            canonical = f"{canonical_root}.{rest}" if rest else canonical_root
        elif root in module.classes and rest:
            # Same-module ``Class.method`` reference.
            return (module, dotted) if dotted in module.functions else None
        else:
            canonical = dotted
        resolved = self.resolve_symbol(canonical)
        if resolved is not None and resolved[1]:
            return resolved
        return None

    def project_functions(self) -> List[Tuple[ModuleInfo, str, ast.AST]]:
        """Every function in the parsed set, deterministically ordered."""
        out: List[Tuple[ModuleInfo, str, ast.AST]] = []
        for name in sorted(self.modules):
            info = self.modules[name]
            for qual in sorted(info.functions):
                out.append((info, qual, info.functions[qual]))
        return out
