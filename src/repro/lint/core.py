"""The ``repro.lint`` engine: rules, the per-file driver, suppressions.

A *rule* is a class with an ``id`` (``RPR001`` ...), a one-line
``summary``, and a ``check(context)`` generator yielding
:class:`Violation` objects.  Rules register themselves with the
:func:`rule` decorator; the driver parses each file once and hands every
registered rule the same :class:`FileContext` (path, source, AST,
comment map), so adding a rule never adds a parse.

Suppressions are explicit and narrow: a ``# repro: noqa[RPR001]``
comment suppresses that rule on its line, ``# repro: noqa`` suppresses
every rule on its line.  Blanket file-level opt-outs are deliberately
not supported — the point of the pass is that invariants hold
everywhere, and each surviving ``noqa`` is greppable and reviewable.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type, Union

#: ``# repro: noqa`` or ``# repro: noqa[RPR001,RPR005]`` (case-insensitive).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and what is wrong."""

    rule: str
    path: str
    line: int
    column: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "column": self.column, "message": self.message}


@dataclass
class FileContext:
    """Everything a rule may inspect about one file (parsed once)."""

    path: Path
    source: str
    tree: ast.AST
    #: line number -> set of suppressed rule ids ("*" means all rules).
    noqa: Dict[int, Set[str]] = field(default_factory=dict)
    #: Whole-program context (:class:`repro.lint.project.ProjectContext`)
    #: when linting in project mode; None in per-file mode, where rules
    #: with ``requires_project`` yield nothing.
    project: Optional[object] = None

    @property
    def path_parts(self) -> Sequence[str]:
        return self.path.parts

    def in_directory(self, *names: str) -> bool:
        """Whether any path component matches one of ``names``."""
        return any(part in names for part in self.path_parts)

    def is_file(self, *basenames: str) -> bool:
        return self.path.name in basenames


class Rule:
    """Base class for lint rules; subclasses register via :func:`rule`."""

    id: str = ""
    summary: str = ""
    #: Whole-program rules need ``FileContext.project`` (the import/call
    #: graph + flow analyses) and are inert in per-file mode.
    requires_project: bool = False

    def check(self, context: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, context: FileContext, node: ast.AST,
                  message: str) -> Violation:
        """A :class:`Violation` anchored at ``node``'s source location."""
        return Violation(self.id, str(context.path),
                         getattr(node, "lineno", 1),
                         getattr(node, "col_offset", 0) + 1, message)


#: The global registry: rule id -> rule class, in registration order.
RULES: Dict[str, Type[Rule]] = {}

_RULE_ID_RE = re.compile(r"^RPR\d{3}$")


def rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: validate and register a :class:`Rule` subclass."""
    if not _RULE_ID_RE.match(cls.id):
        raise ValueError(f"rule id {cls.id!r} must look like 'RPR001'")
    if not cls.summary:
        raise ValueError(f"rule {cls.id} needs a one-line summary")
    if cls.id in RULES:
        raise ValueError(f"duplicate rule id {cls.id}")
    RULES[cls.id] = cls
    return cls


def parse_noqa(source: str) -> Dict[int, Set[str]]:
    """Map line number -> suppressed rule ids (``{"*"}`` = all rules).

    Comments are found with :mod:`tokenize`, so a ``repro: noqa``-shaped
    string *literal* does not suppress anything.
    """
    out: Dict[int, Set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if not match:
                continue
            rules = match.group("rules")
            ids = {r.strip().upper() for r in rules.split(",") if r.strip()} \
                if rules else {"*"}
            out.setdefault(tok.start[0], set()).update(ids)
    except tokenize.TokenError:
        pass  # the AST parse will report the real syntax problem
    return out


def _suppressed(violation: Violation, noqa: Dict[int, Set[str]]) -> bool:
    ids = noqa.get(violation.line)
    return bool(ids) and ("*" in ids or violation.rule in ids)


def _selected_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    if select is None:
        return [cls() for cls in RULES.values()]
    unknown = sorted(set(select) - set(RULES))
    if unknown:
        raise ValueError(f"unknown rule ids {unknown}; known: {sorted(RULES)}")
    return [RULES[rule_id]() for rule_id in select]


def lint_source(source: str, path: Union[str, Path],
                select: Optional[Sequence[str]] = None) -> List[Violation]:
    """Run (selected) rules over one file's source text."""
    path = Path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Violation("RPR000", str(path), exc.lineno or 1,
                          (exc.offset or 0) or 1,
                          f"syntax error: {exc.msg}")]
    context = FileContext(path=path, source=source, tree=tree,
                          noqa=parse_noqa(source))
    violations: List[Violation] = []
    for checker in _selected_rules(select):
        violations.extend(v for v in checker.check(context)
                          if not _suppressed(v, context.noqa))
    violations.sort(key=lambda v: (v.line, v.column, v.rule))
    return violations


def lint_file(path: Union[str, Path],
              select: Optional[Sequence[str]] = None) -> List[Violation]:
    """Run (selected) rules over one file on disk."""
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), path, select)


def iter_python_files(paths: Iterable[Union[str, Path]]) -> Iterator[Path]:
    """Expand files and directories into a sorted stream of ``.py`` files."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            yield from sorted(p for p in entry.rglob("*.py"))
        else:
            yield entry


def lint_paths(paths: Iterable[Union[str, Path]],
               select: Optional[Sequence[str]] = None) -> List[Violation]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path, select))
    return violations
