"""Name-resolution helpers shared by the AST rules.

Rules frequently need to know what a dotted expression *canonically*
refers to: ``np.random.seed`` is ``numpy.random.seed`` when the file
said ``import numpy as np``, and a bare ``rng()`` may be
``numpy.random.default_rng`` after ``from numpy.random import
default_rng as rng``.  :class:`ImportMap` collects a module's import
statements and resolves attribute chains back to canonical dotted
names, so each rule can match on the canonical spelling alone.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional


class ImportMap:
    """Local alias -> canonical dotted name, from a module's imports."""

    def __init__(self, tree: ast.AST):
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    # ``import a.b.c`` binds ``a``; ``import a.b as x``
                    # binds ``x`` to the full path.
                    self.aliases[local] = item.name if item.asname \
                        else item.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for item in node.names:
                    if item.name == "*":
                        continue
                    local = item.asname or item.name
                    self.aliases[local] = f"{node.module}.{item.name}"

    def canonical(self, name: str) -> Optional[str]:
        """The canonical dotted name bound to local ``name`` (if imported)."""
        return self.aliases.get(name)

    def is_imported(self, name: str) -> bool:
        """Whether ``name`` was bound by any import statement — in which
        case ``name.attr`` is reachable by import from another process
        (a module function, or a method on an importable class)."""
        return name in self.aliases


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_dotted(node: ast.AST, imports: ImportMap) -> Optional[str]:
    """Canonical dotted name of an attribute chain, through import aliases.

    ``np.random.seed`` -> ``numpy.random.seed`` given ``import numpy as
    np``; a chain whose root is not an import stays as written (callers
    decide whether an unresolved root matters).
    """
    name = dotted_name(node)
    if name is None:
        return None
    root, _, rest = name.partition(".")
    canonical_root = imports.canonical(root)
    if canonical_root is None:
        return name
    return f"{canonical_root}.{rest}" if rest else canonical_root
