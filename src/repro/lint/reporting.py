"""Lint reporters: human text and machine JSON, plus exit codes.

Exit-code contract (mirrors the common linter convention):

* ``0`` — every file parsed and no rule fired;
* ``1`` — at least one violation (including suppressible ones);
* ``2`` — a file could not be analyzed (syntax error, ``RPR000``).
"""

from __future__ import annotations

import json
from collections import Counter
from typing import IO, List, Sequence

from repro.lint.core import RULES, Violation

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2


def exit_code(violations: Sequence[Violation]) -> int:
    if any(v.rule == "RPR000" for v in violations):
        return EXIT_ERROR
    return EXIT_VIOLATIONS if violations else EXIT_CLEAN


def render_text(violations: Sequence[Violation], files_checked: int,
                out: IO[str], statistics: bool = False) -> None:
    """One ``path:line:col: RULE message`` line per violation + summary."""
    for violation in violations:
        print(violation.format(), file=out)
    if statistics and violations:
        counts = Counter(v.rule for v in violations)
        print(file=out)
        for rule_id, count in sorted(counts.items()):
            summary = RULES[rule_id].summary if rule_id in RULES \
                else "could not analyze file"
            print(f"{rule_id}  {count:4d}  {summary}", file=out)
    noun = "violation" if len(violations) == 1 else "violations"
    print(f"{len(violations)} {noun} in {files_checked} file(s) checked",
          file=out)


def render_json(violations: Sequence[Violation], files_checked: int,
                out: IO[str]) -> None:
    """A single JSON document: violations, per-rule counts, summary."""
    counts = Counter(v.rule for v in violations)
    document = {
        "files_checked": files_checked,
        "violation_count": len(violations),
        "rules": {rule_id: {"summary": cls.summary,
                            "violations": counts.get(rule_id, 0)}
                  for rule_id, cls in RULES.items()},
        "violations": [v.to_dict() for v in violations],
        "exit_code": exit_code(violations),
    }
    json.dump(document, out, indent=2)
    out.write("\n")


def render(violations: List[Violation], files_checked: int, out: IO[str],
           format: str = "text", statistics: bool = False) -> int:
    """Render in the requested format; returns the process exit code."""
    if format == "json":
        render_json(violations, files_checked, out)
    else:
        render_text(violations, files_checked, out, statistics=statistics)
    return exit_code(violations)
