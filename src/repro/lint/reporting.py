"""Lint reporters: human text and machine JSON, plus exit codes.

Exit-code contract (mirrors the common linter convention):

* ``0`` — every file parsed and no rule fired;
* ``1`` — at least one violation (including suppressible ones);
* ``2`` — a file could not be analyzed (syntax error, ``RPR000``).

Project mode feeds the reporters a :class:`LintRunStats` so the summary
line and ``--statistics`` can show the incremental accounting (files
analyzed vs. reused from cache) and per-rule wall time (count / total /
p50 / p95 over per-file check calls, from :mod:`repro.obs` timing
histograms).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional, Sequence

from repro.lint.core import RULES, Violation

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2


@dataclass
class LintRunStats:
    """Run accounting the reporters show next to the findings."""

    files_analyzed: int = 0
    files_reused: int = 0
    #: rule id -> TimingHistogram summary() dict (count/sum/p50/p95/...).
    rule_timings: Dict[str, dict] = field(default_factory=dict)


def exit_code(violations: Sequence[Violation]) -> int:
    if any(v.rule == "RPR000" for v in violations):
        return EXIT_ERROR
    return EXIT_VIOLATIONS if violations else EXIT_CLEAN


def _format_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1000.0:.1f}ms"


def render_text(violations: Sequence[Violation], files_checked: int,
                out: IO[str], statistics: bool = False,
                run_stats: Optional[LintRunStats] = None) -> None:
    """One ``path:line:col: RULE message`` line per violation + summary."""
    for violation in violations:
        print(violation.format(), file=out)
    if statistics and violations:
        counts = Counter(v.rule for v in violations)
        print(file=out)
        for rule_id, count in sorted(counts.items()):
            summary = RULES[rule_id].summary if rule_id in RULES \
                else "could not analyze file"
            print(f"{rule_id}  {count:4d}  {summary}", file=out)
    if statistics and run_stats is not None and run_stats.rule_timings:
        print(file=out)
        print("rule timings (over per-file checks):", file=out)
        for rule_id in sorted(run_stats.rule_timings):
            timing = run_stats.rule_timings[rule_id]
            if not timing.get("count"):
                continue
            print(f"  {rule_id}  calls={timing['count']:4d}  "
                  f"total={_format_seconds(timing['sum'])}  "
                  f"p50={_format_seconds(timing['p50'])}  "
                  f"p95={_format_seconds(timing['p95'])}", file=out)
    noun = "violation" if len(violations) == 1 else "violations"
    tail = f"{len(violations)} {noun} in {files_checked} file(s) checked"
    if run_stats is not None:
        tail += (f" ({run_stats.files_analyzed} analyzed, "
                 f"{run_stats.files_reused} from cache)")
    print(tail, file=out)


def render_json(violations: Sequence[Violation], files_checked: int,
                out: IO[str],
                run_stats: Optional[LintRunStats] = None) -> None:
    """A single JSON document: violations, per-rule counts, summary."""
    counts = Counter(v.rule for v in violations)
    document = {
        "files_checked": files_checked,
        "violation_count": len(violations),
        "rules": {rule_id: {"summary": cls.summary,
                            "violations": counts.get(rule_id, 0)}
                  for rule_id, cls in RULES.items()},
        "violations": [v.to_dict() for v in violations],
        "exit_code": exit_code(violations),
    }
    if run_stats is not None:
        document["files_analyzed"] = run_stats.files_analyzed
        document["files_reused"] = run_stats.files_reused
        document["rule_timings"] = {rule_id: run_stats.rule_timings[rule_id]
                                    for rule_id in
                                    sorted(run_stats.rule_timings)}
    json.dump(document, out, indent=2)
    out.write("\n")


def render(violations: List[Violation], files_checked: int, out: IO[str],
           format: str = "text", statistics: bool = False,
           run_stats: Optional[LintRunStats] = None) -> int:
    """Render in the requested format; returns the process exit code."""
    if format == "json":
        render_json(violations, files_checked, out, run_stats=run_stats)
    else:
        render_text(violations, files_checked, out, statistics=statistics,
                    run_stats=run_stats)
    return exit_code(violations)
