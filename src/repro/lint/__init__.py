"""``repro.lint`` — AST-based static analysis for repo invariants.

The trace pipeline's correctness rests on a handful of invariants that
runtime tests only probe pointwise: one canonical table schema, a
deterministic simulator, picklable executor callables, honest exception
handling, and named unit constants.  This package enforces them at zero
runtime cost with a small rule engine (see :mod:`repro.lint.core`) and
five repo-specific rules (see :mod:`repro.lint.rules`), wired into the
``borg-repro lint`` CLI subcommand and CI.

Quick use::

    from repro.lint import lint_paths
    violations = lint_paths(["src"])          # all rules
    violations = lint_paths(["src"], select=["RPR002"])

Suppress a single finding with a line comment::

    window = horizon / 3600.0  # repro: noqa[RPR005] legacy figure script
"""

from repro.lint.core import (
    RULES,
    FileContext,
    Rule,
    Violation,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    parse_noqa,
    rule,
)
from repro.lint.reporting import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_VIOLATIONS,
    exit_code,
    render,
    render_json,
    render_text,
)
import repro.lint.rules  # noqa: F401,E402  (registers the built-in rules)

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_VIOLATIONS",
    "FileContext",
    "RULES",
    "Rule",
    "Violation",
    "exit_code",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "parse_noqa",
    "render",
    "render_json",
    "render_text",
    "rule",
]
