"""``repro.lint`` — AST-based static analysis for repo invariants.

The trace pipeline's correctness rests on a handful of invariants that
runtime tests only probe pointwise: one canonical table schema, a
deterministic simulator, picklable executor callables, honest exception
handling, and named unit constants.  This package enforces them at zero
runtime cost with a small rule engine (see :mod:`repro.lint.core`) and
a catalogue of repo-specific rules (see :mod:`repro.lint.rules`), wired
into the ``borg-repro lint`` CLI subcommand and CI.

Two drivers share the rule registry.  The per-file driver
(:func:`lint_paths`) parses each file in isolation and runs the
syntactic rules (RPR001–RPR007).  The **project** driver
(:func:`lint_project`) additionally builds an import/call graph over
the whole tree (:mod:`repro.lint.graph`), runs the taint engine
(:mod:`repro.lint.flow`) behind the whole-program rules
(RPR008–RPR010), and caches results incrementally by content hash with
import-graph invalidation (:mod:`repro.lint.cache`).

Quick use::

    from repro.lint import lint_paths, lint_project
    violations = lint_paths(["src"])          # per-file rules only
    result = lint_project(["src"])            # all rules + cache
    result = lint_project(["src"], select=["RPR008"], use_cache=False)

Suppress a single finding with a line comment::

    window = horizon / 3600.0  # repro: noqa[RPR005] legacy figure script

Flow-rule violations anchor at the line where the taint *enters* the
file (the source), never the sink, so a ``noqa`` is always a judgement
about exactly one source.
"""

from repro.lint.core import (
    RULES,
    FileContext,
    Rule,
    Violation,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    parse_noqa,
    rule,
)
from repro.lint.reporting import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_VIOLATIONS,
    exit_code,
    render,
    render_json,
    render_text,
)
import repro.lint.rules  # noqa: F401,E402  (registers the built-in rules)
from repro.lint.project import (  # noqa: E402
    DEFAULT_CACHE_DIR,
    ProjectContext,
    ProjectLintResult,
    lint_project,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_VIOLATIONS",
    "FileContext",
    "ProjectContext",
    "ProjectLintResult",
    "RULES",
    "Rule",
    "Violation",
    "exit_code",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "parse_noqa",
    "render",
    "render_json",
    "render_text",
    "rule",
]
