"""A conservative intra- + inter-procedural taint engine for lint rules.

The flow rules (RPR008, RPR010) share one question with different
vocabularies: *can a value produced here reach a sink over there?*
:class:`FlowAnalysis` answers it over a :class:`~repro.lint.graph.ProjectGraph`:

* **intra-procedural** — inside each function, taint enters at *source*
  expressions (a ``time.time()`` call, a set display), propagates
  through assignments, loops, ``with`` targets, and arbitrary enclosing
  expressions (a tainted operand taints the expression), and is cleared
  by the spec's *sanitizers* (``sorted(...)`` for iteration-order
  taint);
* **inter-procedural** — a function whose return value is tainted gets
  a *summary*; a call to it (resolved through the project graph, across
  modules and re-exports) re-introduces the taint at the call site,
  with the summary chained into the description.  Summaries are
  computed to a fixpoint, so taint crosses any number of module hops.

Design choices, deliberately conservative in *both* directions:

* taint propagates through unknown calls with tainted arguments
  (``int(time.time())`` stays tainted) — over-approximate, because a
  missed nondeterminism source costs a corrupted golden;
* calls through arbitrary runtime objects (``obj.method()``) do not
  resolve and contribute no summary — under-approximate, because
  guessing method targets would bury real findings in noise.  The
  soundness trade-offs are spelled out in DESIGN.md §13.

Every violation is anchored at the line where the taint *enters the
reported file* (the source expression, or the call that imports a
tainted return value), never at the sink: distinct sources reaching one
sink stay distinct findings, and a ``# repro: noqa[...]`` on the sink
line cannot blanket-hide them.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

from repro.lint.core import FileContext, Rule, Violation
from repro.lint.graph import ModuleInfo, ProjectGraph
from repro.lint.names import resolve_dotted

#: Convergence caps: statement passes inside one function body, and
#: summary passes over the whole project.  Taint states are small and
#: monotone in practice; the caps only bound pathological inputs.
_MAX_SUMMARY_PASSES = 12


class Taint(NamedTuple):
    """One taint fact: what it is and where it entered the current file."""

    desc: str
    line: int
    col: int

    @property
    def key(self) -> str:
        return f"{self.desc}@{self.line}:{self.col}"


class Hit(NamedTuple):
    """One flow violation: anchored at the taint's entry line."""

    line: int
    col: int
    message: str


class FlowSpec:
    """What a flow rule considers a source, a sanitizer, and a sink."""

    rule_id: str = ""
    #: Canonical callable names that *clear* taint (result is clean even
    #: with tainted arguments), e.g. ``sorted``.
    sanitizers: frozenset = frozenset()
    #: Canonical callable names whose result is order/value independent
    #: of argument taint (``len``, ``sum``): not tainted, not sanitizing
    #: anything else.
    neutral: frozenset = frozenset()

    def source_call(self, canonical: Optional[str],
                    call: ast.Call) -> Optional[str]:
        """Description if calling ``canonical`` introduces taint."""
        return None

    def source_expr(self, node: ast.expr,
                    canonical: Optional[str]) -> Optional[str]:
        """Description if the bare expression introduces taint
        (set displays, ``os.environ`` attribute reads, ...)."""
        return None

    def sink_call(self, canonical: Optional[str],
                  resolved: Optional[Tuple[ModuleInfo, str]],
                  call: ast.Call, module: ModuleInfo) -> Optional[str]:
        """Description if tainted *arguments* to this call violate."""
        return None

    def call_site_sink(self, resolved: Optional[Tuple[ModuleInfo, str]],
                       summary: Optional[str],
                       module: ModuleInfo) -> Optional[str]:
        """Description if merely *receiving* a tainted return value in
        ``module`` violates (e.g. any call importing nondeterminism
        into simulator scope)."""
        return None

    def advice(self) -> str:
        """One clause appended to every message: how to fix it."""
        return ""


TaintMap = Dict[str, Dict[str, Taint]]


class _FunctionTaint:
    """Intra-procedural pass over one function (or the module body)."""

    def __init__(self, analysis: "FlowAnalysis", module: ModuleInfo,
                 seed: Optional[Dict[str, Dict[str, Taint]]] = None):
        self.analysis = analysis
        self.module = module
        self.spec = analysis.spec
        #: variable name -> {taint key -> Taint}
        self.tainted: TaintMap = {k: dict(v) for k, v in (seed or {}).items()}
        self.returns: Dict[str, Taint] = {}

    # -- name helpers --------------------------------------------------------

    def _canonical(self, node: ast.AST) -> Optional[str]:
        return resolve_dotted(node, self.module.import_map)

    # -- expression taint ----------------------------------------------------

    def expr(self, node: ast.AST) -> Dict[str, Taint]:
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Name):
            out = dict(self.tainted.get(node.id, {}))
            desc = self.spec.source_expr(node, self._canonical(node))
            if desc is not None:
                self._add(out, desc, node)
            return out
        if isinstance(node, (ast.Lambda, ast.FunctionDef,
                             ast.AsyncFunctionDef, ast.ClassDef)):
            return {}
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            out = {}
            desc = self.spec.source_expr(node, None)
            if desc is not None:
                self._add(out, desc, node)
            out.update(self._comprehension(node))
            return out
        out: Dict[str, Taint] = {}
        if isinstance(node, ast.expr):
            desc = self.spec.source_expr(node, self._canonical(node))
            if desc is not None:
                self._add(out, desc, node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out.update(self.expr(child))
            elif isinstance(child, (ast.comprehension, ast.keyword)):
                out.update(self.expr(child))
        return out

    def _comprehension(self, node: ast.AST) -> Dict[str, Taint]:
        """Element taint of a comprehension, with its targets bound in a
        temporary scope so they shadow (not inherit) outer variables."""
        saved = self.tainted
        self.tainted = {k: dict(v) for k, v in saved.items()}
        try:
            for gen in node.generators:
                self.bind(gen.target, self.expr(gen.iter))
            if isinstance(node, ast.DictComp):
                out = dict(self.expr(node.key))
                out.update(self.expr(node.value))
                return out
            return self.expr(node.elt)
        finally:
            self.tainted = saved

    def _add(self, out: Dict[str, Taint], desc: str, node: ast.AST) -> None:
        taint = Taint(desc, getattr(node, "lineno", 1),
                      getattr(node, "col_offset", 0))
        out[taint.key] = taint

    def _call(self, call: ast.Call) -> Dict[str, Taint]:
        canonical = self._canonical(call.func)
        if canonical in self.spec.sanitizers:
            return {}
        if canonical in self.spec.neutral:
            return {}
        out: Dict[str, Taint] = {}
        desc = self.spec.source_call(canonical, call)
        if desc is not None:
            self._add(out, desc, call)
        resolved = self.analysis.graph.resolve_call(call.func, self.module)
        if resolved is not None:
            summary = self.analysis.summary(resolved)
            if summary is not None:
                self._add(out, f"call to {resolved[0].name}.{resolved[1]}() "
                               f"[{summary}]", call)
        out.update(self.arg_taints(call))
        if isinstance(call.func, ast.Attribute):
            # A method on a tainted object returns tainted data
            # (``tainted.copy()``, ``s.union(t)``).
            out.update(self.expr(call.func.value))
        return out

    def arg_taints(self, call: ast.Call) -> Dict[str, Taint]:
        out: Dict[str, Taint] = {}
        for arg in call.args:
            out.update(self.expr(arg))
        for kw in call.keywords:
            out.update(self.expr(kw.value))
        return out

    # -- statement execution -------------------------------------------------

    def bind(self, target: ast.AST, taints: Dict[str, Taint]) -> None:
        if isinstance(target, ast.Name):
            if taints:
                self.tainted[target.id] = dict(taints)
            else:
                self.tainted.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.bind(element, taints)
        elif isinstance(target, ast.Starred):
            self.bind(target.value, taints)
        # Attribute / Subscript targets: not tracked (conservative miss).

    def exec_block(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            taints = self.expr(stmt.value)
            for target in stmt.targets:
                self.bind(target, taints)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self.bind(stmt.target, self.expr(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taints = self.expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                merged = dict(self.tainted.get(stmt.target.id, {}))
                merged.update(taints)
                if merged:
                    self.tainted[stmt.target.id] = merged
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            # Two body passes capture loop-carried taint.
            for _ in range(2):
                self.bind(stmt.target, self.expr(stmt.iter))
                self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            for _ in range(2):
                self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self.expr(item.context_expr)
                if item.optional_vars is not None:
                    self.bind(item.optional_vars, taints)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            self.returns.update(self.expr(stmt.value))
        elif isinstance(stmt, ast.Expr):
            pass  # pure uses are checked in the sink pass

    def run(self, body: List[ast.stmt]) -> None:
        self.exec_block(body)

    # -- sink pass -----------------------------------------------------------

    def sink_hits(self, body: List[ast.stmt]) -> Iterator[Hit]:
        seen = set()
        for call in _walk_calls(body):
            canonical = self._canonical(call.func)
            resolved = self.analysis.graph.resolve_call(call.func, self.module)
            sink = self.spec.sink_call(canonical, resolved, call, self.module)
            if sink is not None:
                for taint in sorted(self.arg_taints(call).values()):
                    key = (taint.key, "arg", call.lineno)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield Hit(taint.line, taint.col + 1,
                              f"{taint.desc} flows into {sink} "
                              f"(line {call.lineno}); {self.spec.advice()}")
            if resolved is not None:
                summary = self.analysis.summary(resolved)
                site = self.spec.call_site_sink(resolved, summary, self.module)
                if site is not None:
                    key = (f"{resolved[0].name}.{resolved[1]}", "site",
                           call.lineno)
                    if key not in seen:
                        seen.add(key)
                        yield Hit(call.lineno, call.col_offset + 1,
                                  f"call to {resolved[0].name}."
                                  f"{resolved[1]}() [{summary}] reaches "
                                  f"{site}; {self.spec.advice()}")


def _walk_calls(body: List[ast.stmt]) -> Iterator[ast.Call]:
    """Every Call in ``body``, not descending into nested def bodies."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _module_statements(info: ModuleInfo) -> List[ast.stmt]:
    """The module body minus def/class statements (the import-time code)."""
    return [s for s in info.tree.body
            if not isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef))]


class FlowRule(Rule):
    """Base for taint-driven rules: one :class:`FlowSpec`, one report
    per :class:`Hit` in the file under lint.  Yields nothing outside
    project mode (whole-program rules need the whole program)."""

    requires_project = True
    spec: FlowSpec

    def warm(self, project) -> None:
        """Build the project fixpoint up front so ``--statistics`` books
        its cost against this rule, not against the first file checked."""
        project.flow(type(self).spec)

    def check(self, context: FileContext) -> Iterator[Violation]:
        project = context.project
        if project is None:
            return
        info = project.graph.module_for_path(context.path)
        if info is None:
            return
        for hit in project.flow(type(self).spec).hits_for(info):
            yield Violation(self.id, str(context.path), hit.line, hit.col,
                            hit.message)


class FlowAnalysis:
    """Project-wide taint fixpoint for one :class:`FlowSpec`."""

    def __init__(self, graph: ProjectGraph, spec: FlowSpec):
        self.graph = graph
        self.spec = spec
        #: (module name, qualname) -> taint description of return value.
        self.summaries: Dict[Tuple[str, str], str] = {}
        #: module name -> {global var -> taints} from the module body.
        self.module_globals: Dict[str, TaintMap] = {}
        self._compute()

    def summary(self, resolved: Tuple[ModuleInfo, str]) -> Optional[str]:
        return self.summaries.get((resolved[0].name, resolved[1]))

    def _compute(self) -> None:
        functions = self.graph.project_functions()
        for _ in range(_MAX_SUMMARY_PASSES):
            changed = False
            for name in sorted(self.graph.modules):
                info = self.graph.modules[name]
                pass_ = _FunctionTaint(self, info)
                pass_.run(_module_statements(info))
                globals_taint = {k: v for k, v in pass_.tainted.items() if v}
                if globals_taint != self.module_globals.get(name, {}):
                    self.module_globals[name] = globals_taint
                    changed = True
            for info, qual, node in functions:
                body = getattr(node, "body", [])
                pass_ = _FunctionTaint(
                    self, info, seed=self.module_globals.get(info.name))
                pass_.run(body)
                if pass_.returns:
                    desc = sorted(pass_.returns.values())[0].desc
                    key = (info.name, qual)
                    if self.summaries.get(key) != desc:
                        self.summaries[key] = desc
                        changed = True
            if not changed:
                break

    def hits_for(self, info: ModuleInfo) -> List[Hit]:
        """All flow violations anchored in ``info``'s file."""
        hits: List[Hit] = []
        module_pass = _FunctionTaint(self, info)
        module_pass.run(_module_statements(info))
        hits.extend(module_pass.sink_hits(_module_statements(info)))
        for qual in sorted(info.functions):
            node = info.functions[qual]
            body = getattr(node, "body", [])
            pass_ = _FunctionTaint(
                self, info, seed=self.module_globals.get(info.name))
            pass_.run(body)
            hits.extend(pass_.sink_hits(body))
        unique = sorted(set(hits))
        return unique
