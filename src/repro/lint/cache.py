"""Incremental lint cache: content-hash keys, import-graph invalidation.

Whole-program analysis makes every lint run touch every file — fine
once, wasteful on every save and every CI push.  The cache stores, per
file, its content hash, its module name, its direct project imports,
and the violations the last run produced, under a signature that names
the rule set (same content-addressed idea as the campaign cache keys,
:mod:`repro.campaign.cache_key`: any semantic input to the result —
file bytes, rule ids, rule summaries, cache schema — changes the key;
formatting of the cache file itself never does).

Invalidation is through the **import graph**: a file must be
re-analyzed when its own content hash changes *or* when any module it
transitively imports changes, because forward-flow facts (tainted
returns, symbol resolution) travel along import edges.  The driver
computes the dirty set as ``changed ∪ reverse-import-closure(changed)``
and reuses cached violations for the rest — except RPR009, whose facts
flow *against* import edges: its entries carry a per-file fact summary
(``rpr009``) instead, and the driver recomputes its verdict map
globally from summaries on every run, rewriting any stale entry.  A
warm run on an unchanged tree therefore re-analyzes zero files, and a
one-file edit re-analyzes that file plus its reverse dependencies plus
whatever files the edit's fork-share facts actually reverdict — the
acceptance contract this module exists to meet.

The signature also folds in a digest of the ``repro.lint`` package
sources, so pulling an engine fix (graph/flow/rule logic) rolls local
developer caches even when no rule id or summary string changed.

Different rule selections keep different cache files side by side in
the cache directory (CI lints ``src/`` with the full set and
``tests/``+``benchmarks/`` with a curated subset without thrashing).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence

#: Bump when the entry layout or the meaning of cached fields changes.
CACHE_SCHEMA = "repro.lint.cache/2"

#: Hex digits kept from each SHA-256 (matches the campaign key length).
DIGEST_LENGTH = 16

#: Memoized digest of the repro.lint package sources (None = unset).
_ENGINE_DIGEST: Optional[str] = None


def file_digest(source: str) -> str:
    """Content hash of one file's text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:DIGEST_LENGTH]


def engine_digest() -> str:
    """Content digest of the whole ``repro.lint`` package.

    Any change to the analysis engine — graph, flow, cache, or rule
    logic that does not touch a rule's summary string — must roll every
    cache, or a warm run keeps serving results the old engine computed.
    """
    global _ENGINE_DIGEST
    if _ENGINE_DIGEST is None:
        package_root = Path(__file__).resolve().parent
        hasher = hashlib.sha256()
        for source_path in sorted(package_root.rglob("*.py")):
            hasher.update(str(source_path.relative_to(package_root)).encode())
            hasher.update(b"\0")
            hasher.update(source_path.read_bytes())
            hasher.update(b"\0")
        _ENGINE_DIGEST = hasher.hexdigest()[:DIGEST_LENGTH]
    return _ENGINE_DIGEST


def cache_signature(rule_ids: Sequence[str],
                    rule_summaries: Sequence[str]) -> str:
    """The rule-set signature naming one cache file.

    Summaries ride along so editing a rule's behaviour *description*
    (which accompanies behaviour changes in this codebase) rolls the
    cache, and the engine digest rolls it when the analysis code itself
    changes; a full re-lint after any lint change is the safe default.
    """
    payload = json.dumps({
        "schema": CACHE_SCHEMA,
        "engine": engine_digest(),
        "rules": sorted(zip(rule_ids, rule_summaries)),
    }, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:DIGEST_LENGTH]


class LintCache:
    """One rule-set's cache file: load, query, update, save atomically."""

    def __init__(self, directory: Path, signature: str):
        self.directory = Path(directory)
        self.signature = signature
        self.path = self.directory / f"lint-{signature}.json"
        #: path string -> {"hash", "module", "imports", "violations"}
        #: plus, when RPR009 is in the rule set, its "rpr009" summary.
        self.entries: Dict[str, dict] = {}

    def load(self) -> "LintCache":
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return self
        if data.get("schema") != CACHE_SCHEMA \
                or data.get("signature") != self.signature:
            return self
        entries = data.get("entries")
        if isinstance(entries, dict):
            self.entries = entries
        return self

    def entry(self, path: str) -> Optional[dict]:
        return self.entries.get(path)

    def is_fresh(self, path: str, digest: str) -> bool:
        entry = self.entries.get(path)
        return entry is not None and entry.get("hash") == digest

    def put(self, path: str, digest: str, module: str,
            imports: Sequence[str], violations: List[dict],
            rpr009: Optional[dict] = None) -> None:
        entry = {
            "hash": digest,
            "module": module,
            "imports": sorted(imports),
            "violations": violations,
        }
        if rpr009 is not None:
            entry["rpr009"] = rpr009
        self.entries[path] = entry

    def prune(self, keep_paths: Sequence[str]) -> None:
        """Drop entries for files that no longer exist in the lint set."""
        keep = set(keep_paths)
        for path in [p for p in self.entries if p not in keep]:
            del self.entries[path]

    def save(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        document = {
            "schema": CACHE_SCHEMA,
            "signature": self.signature,
            "entries": {path: self.entries[path]
                        for path in sorted(self.entries)},
        }
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(document, indent=1, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, self.path)
