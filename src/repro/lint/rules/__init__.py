"""The built-in rule set.  Importing this package registers every rule.

Rule catalogue
--------------
RPR001  schema consistency — column strings must exist in the canonical
        schema of the table being read (repro/trace/schema.py).
RPR002  determinism — no wall clocks or global RNG inside repro.sim and
        repro.workload; only injected np.random.Generator streams.
RPR003  fork safety — map/reduce callables handed to the store executor
        must be importable by name from worker processes.
RPR004  exception hygiene — broad excepts must re-raise, log, or narrow.
RPR005  unit discipline — resource/time magnitudes go through the named
        constants in repro.util, never raw literals.
RPR006  obs discipline — span names handed to repro.obs.span/traced must
        be literal strings, so the span-tree structure stays a pure
        function of control flow.
RPR007  hot-loop guards — recorder/profiler calls inside repro.sim loops
        must sit behind an if-guard naming the handle, keeping opt-in
        telemetry off the per-event path of unrecorded runs.

Whole-program rules (project mode only — ``borg-repro lint`` and
:func:`repro.lint.project.lint_project`; inert under per-file
``lint_source``):

RPR008  determinism taint — nondeterministic values (wall clocks, global
        RNG, entropy, environment reads) may not flow — across modules —
        into repro.sim / repro.workload / repro.analysis calls.
RPR009  fork-share races — functions submitted to process pools (and
        their transitive callees) must not touch module-level mutable
        state; the scoped-registry pattern is the sanctioned escape.
RPR010  iteration order — set/filesystem-order iterables must pass
        through sorted() before reaching JSON output or the campaign
        cache-key functions.

Adding a rule: create a module here defining a :class:`repro.lint.Rule`
subclass with the next free ``RPR`` id, decorate it with
``@repro.lint.core.rule``, and import the module below.  The driver,
reporters, ``noqa`` handling, CLI, and CI pick it up automatically.
"""

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    determinism,
    exception_hygiene,
    flow_determinism,
    fork_safety,
    fork_share,
    hot_loop_guards,
    iteration_order,
    obs_discipline,
    schema_consistency,
    unit_discipline,
)
