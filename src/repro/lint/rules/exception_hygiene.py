"""RPR004 — exception hygiene: no silently-swallowed broad excepts.

A bare ``except:`` or an ``except Exception:`` whose body neither
re-raises nor records what happened converts every future bug into a
silent wrong answer.  In a pipeline whose whole point is that trace
invariants are *checked* (paper section 9), swallowed exceptions are how
bad data sneaks past the checks, so broad handlers must re-raise, log,
warn, or print what they caught.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import FileContext, Rule, Violation, rule

BROAD = ("Exception", "BaseException")

#: Call attribute/function names that count as "recording the failure".
_REPORTING_NAMES = frozenset({
    "debug", "info", "warning", "warn", "error", "exception", "critical",
    "log", "print", "print_exc", "fail", "add_violation",
})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) \
        else [handler.type]
    return any(isinstance(t, ast.Name) and t.id in BROAD for t in types)


def _reports_or_reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if name in _REPORTING_NAMES:
                return True
    return False


@rule
class ExceptionHygieneRule(Rule):
    id = "RPR004"
    summary = ("broad except swallows the error; re-raise, log, or "
               "narrow the exception type")

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node):
                continue
            if _reports_or_reraises(node):
                continue
            caught = "bare except" if node.type is None \
                else f"except {ast.unparse(node.type)}"
            yield self.violation(
                context, node,
                f"{caught} swallows the error without re-raising or "
                "logging; handle a narrower type or record the failure",
            )
