"""RPR009 — fork-share races: no parent-process globals in worker code.

The store executor, the multi-cell sim driver, and the campaign runner
all fan work out over ``multiprocessing`` pools.  Under ``fork`` start
methods a worker begins with a *copy* of the parent's memory: a
module-level dict the parent mutated is silently stale in the worker,
a dict the worker mutates silently never reaches the parent, and under
``spawn`` the same global is re-created empty — three different
behaviours for one line of code, none of them an error message.  The
sanctioned escape is the scoped-registry pattern
(:func:`repro.obs.registry.scoped_registry`): workers record into a
fresh registry and ship an explicit snapshot home.

This rule finds every function *submitted to a pool* (``map_reduce``
callables, ``pool.imap``/``map``/``apply_async``/... targets, through
``functools.partial`` and local aliases), takes the transitive closure
over the project call graph, and inside that worker-callable set flags
direct reads and writes of module-level **mutable** state — dict/list/
set displays and constructors, and instances of project classes —
whenever that state is also written at runtime somewhere in the
project (writes in worker code are flagged unconditionally).  Globals
defined in ``repro.obs.registry`` itself are exempt: they *are* the
pattern.

Like the other flow rules this is whole-program: the submission site,
the worker function, and the shared global are routinely in three
different files, which is exactly why the per-file RPR003 cannot see
the race.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, NamedTuple, Optional, Set, Tuple

from repro.lint.core import FileContext, Rule, Violation, rule
from repro.lint.flow import Hit
from repro.lint.graph import ModuleInfo, ProjectGraph
from repro.lint.names import dotted_name

#: Pool-submission attribute methods that always take a callable first.
POOL_METHODS = frozenset({"imap", "imap_unordered", "map_async",
                          "starmap", "starmap_async", "apply_async"})
#: Generic names that only count on pool/executor-ish receivers.
POOL_METHODS_GUARDED = frozenset({"map", "apply", "submit"})
#: The store executor's fan-out entry (see RPR003).
EXECUTOR_METHODS = frozenset({"map_reduce"})
EXECUTOR_KEYWORDS = ("map_fn", "reduce_fn")

#: Constructor calls producing shared-mutable module state.
MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "collections.defaultdict",
    "collections.OrderedDict", "collections.deque", "collections.Counter",
})

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "update", "clear", "pop", "popleft",
    "popitem", "setdefault", "extend", "remove", "discard", "insert",
})

#: The scoped-registry implementation is the sanctioned shared state.
EXEMPT_MODULES = frozenset({"repro.obs.registry"})

_MAX_ALIAS_HOPS = 3


class _Global(NamedTuple):
    module: str
    name: str


class _Access(NamedTuple):
    target: _Global
    line: int
    col: int
    kind: str  # "read" | "write"


def _mutable_globals(info: ModuleInfo, graph: ProjectGraph) -> Set[str]:
    """Names of ``info``'s module-level assignments holding mutable state."""
    out: Set[str] = set()
    for name, value in info.global_values.items():
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                              ast.SetComp, ast.DictComp)):
            out.add(name)
        elif isinstance(value, ast.Call):
            canonical = _canonical(value.func, info)
            if canonical in MUTABLE_CONSTRUCTORS:
                out.add(name)
                continue
            resolved = graph.resolve_call(value.func, info)
            if resolved is not None and resolved[1] in resolved[0].classes:
                out.add(name)
    return out


def _canonical(node: ast.AST, info: ModuleInfo) -> Optional[str]:
    dotted = dotted_name(node)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    canonical_root = info.import_map.canonical(root)
    if canonical_root is None:
        return dotted
    return f"{canonical_root}.{rest}" if rest else canonical_root


def _local_names(fn: ast.AST) -> Set[str]:
    """Names bound locally in ``fn`` (params + assignments), minus any
    declared ``global``."""
    out: Set[str] = set()
    args = getattr(fn, "args", None)
    if args is not None:
        for a in (args.posonlyargs + args.args + args.kwonlyargs):
            out.add(a.arg)
        if args.vararg is not None:
            out.add(args.vararg.arg)
        if args.kwarg is not None:
            out.add(args.kwarg.arg)
    declared_global: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            out.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    out.add(name_node.id)
    return out - declared_global


class _ShareAnalysis:
    """Project-wide pieces: worker closure, globals, accesses per function."""

    def __init__(self, graph: ProjectGraph,
                 extra_written: Optional[Set[Tuple[str, str]]] = None):
        self.graph = graph
        #: (module, name) of every tracked mutable global.
        self.mutables: Set[_Global] = set()
        for name in sorted(graph.modules):
            info = graph.modules[name]
            if info.name in EXEMPT_MODULES:
                continue
            for var in _mutable_globals(info, graph):
                self.mutables.add(_Global(info.name, var))
        #: function key -> accesses of tracked globals inside it.
        self.accesses: Dict[Tuple[str, str], List[_Access]] = {}
        #: globals written at runtime (from any project function).
        self.runtime_written: Set[_Global] = set()
        #: defining module -> globals its functions write (cache fact,
        #: so incremental runs see writers outside the parsed slice).
        self.writes_by_module: Dict[str, Set[Tuple[str, str]]] = {}
        for info, qual, node in graph.project_functions():
            found = self._scan_function(info, node)
            if found:
                self.accesses[(info.name, qual)] = found
                for access in found:
                    if access.kind == "write":
                        self.runtime_written.add(access.target)
                        self.writes_by_module.setdefault(info.name, set()).add(
                            (access.target.module, access.target.name))
        # Runtime-write facts recovered from cache entries of files not
        # parsed this run keep warm results identical to cold ones.
        for module_part, var in (extra_written or ()):
            self.runtime_written.add(_Global(module_part, var))
        #: worker-callable closure: function key -> entry description.
        self.worker_entry: Dict[Tuple[str, str], str] = {}
        self._build_closure()
        #: module name -> hits, computed once per project.
        self.hits_by_module: Dict[str, List[Hit]] = self._hits()

    # -- accesses ------------------------------------------------------------

    def _resolve_ref(self, node: ast.AST,
                     info: ModuleInfo,
                     local: Set[str]) -> Optional[_Global]:
        """The tracked global a Name/Attribute reference points at."""
        if isinstance(node, ast.Name):
            if node.id in local:
                return None
            candidate = _Global(info.name, node.id)
            return candidate if candidate in self.mutables else None
        if isinstance(node, ast.Attribute):
            canonical = _canonical(node, info)
            if canonical is None:
                return None
            module_part, _, attr = canonical.rpartition(".")
            candidate = _Global(module_part, attr)
            return candidate if candidate in self.mutables else None
        return None

    def _scan_function(self, info: ModuleInfo,
                       fn: ast.AST) -> List[_Access]:
        local = _local_names(fn)
        declared_global: Set[str] = set()
        out: List[_Access] = []

        def ref(node: ast.AST) -> Optional[_Global]:
            return self._resolve_ref(node, info, local)

        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        # Receivers already accounted for by an enclosing mutator call or
        # subscript (their Name/Attribute children appear later in the
        # walk) — one syntactic access, one recorded access.
        consumed: Set[int] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and node.id in declared_global \
                    and isinstance(node.ctx, (ast.Store, ast.Del)):
                # Rebinding any module global from a function is a
                # runtime write, mutable value-shape or not.
                out.append(_Access(_Global(info.name, node.id), node.lineno,
                                   node.col_offset, "write"))
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in MUTATOR_METHODS:
                consumed.add(id(node.func))
                consumed.add(id(node.func.value))
                target = ref(node.func.value)
                if target is not None:
                    out.append(_Access(target, node.lineno,
                                       node.col_offset, "write"))
            elif isinstance(node, ast.Subscript):
                consumed.add(id(node.value))
                target = ref(node.value)
                if target is not None:
                    kind = "write" if isinstance(node.ctx,
                                                 (ast.Store, ast.Del)) \
                        else "read"
                    out.append(_Access(target, node.lineno,
                                       node.col_offset, kind))
            elif isinstance(node, (ast.Name, ast.Attribute)) \
                    and isinstance(getattr(node, "ctx", None), ast.Load) \
                    and id(node) not in consumed:
                target = ref(node)
                if target is not None:
                    out.append(_Access(target, node.lineno,
                                       node.col_offset, "read"))
        return out

    # -- worker closure ------------------------------------------------------

    def _callable_ref(self, node: ast.AST, info: ModuleInfo,
                      local_assigns: Dict[str, ast.AST],
                      hops: int = 0) -> Optional[Tuple[ModuleInfo, str]]:
        """Resolve a callable argument to a project function, through
        ``functools.partial`` wrappers and simple local aliases."""
        if hops > _MAX_ALIAS_HOPS:
            return None
        if isinstance(node, ast.Call):
            canonical = _canonical(node.func, info)
            if canonical is not None and canonical.endswith("partial") \
                    and node.args:
                return self._callable_ref(node.args[0], info, local_assigns,
                                          hops + 1)
            return None
        if isinstance(node, ast.Name) and node.id in local_assigns:
            return self._callable_ref(local_assigns[node.id], info,
                                      local_assigns, hops + 1)
        if isinstance(node, (ast.Name, ast.Attribute)):
            return self.graph.resolve_call(node, info)
        return None

    def _submission_seeds(self) -> List[Tuple[ModuleInfo, str, str]]:
        """(callee module, callee qualname, entry description) for every
        callable handed to a pool anywhere in the project."""
        seeds: List[Tuple[ModuleInfo, str, str]] = []
        for info, qual, fn in self.graph.project_functions():
            local_assigns: Dict[str, ast.AST] = {}
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    local_assigns[node.targets[0].id] = node.value
            for call in ast.walk(fn):
                if not (isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)):
                    continue
                attr = call.func.attr
                candidates: List[ast.AST] = []
                if attr in EXECUTOR_METHODS:
                    candidates = list(call.args[:2])
                    candidates += [kw.value for kw in call.keywords
                                   if kw.arg in EXECUTOR_KEYWORDS]
                elif attr in POOL_METHODS:
                    candidates = list(call.args[:1])
                    candidates += [kw.value for kw in call.keywords
                                   if kw.arg == "func"]
                elif attr in POOL_METHODS_GUARDED:
                    receiver = dotted_name(call.func.value) or ""
                    if "pool" in receiver.lower() \
                            or "executor" in receiver.lower():
                        candidates = list(call.args[:1])
                if not candidates:
                    continue
                entry = f"{info.name}.{qual}"
                for candidate in candidates:
                    resolved = self._callable_ref(candidate, info,
                                                  local_assigns)
                    if resolved is not None:
                        seeds.append((resolved[0], resolved[1], entry))
        return seeds

    def _build_closure(self) -> None:
        frontier: List[Tuple[ModuleInfo, str, str]] = []
        for callee_info, callee_qual, entry in self._submission_seeds():
            qual = callee_qual
            if qual in callee_info.classes:
                qual = f"{callee_qual}.__init__"
            if qual not in callee_info.functions:
                continue
            frontier.append((callee_info, qual, entry))
        while frontier:
            info, qual, entry = frontier.pop()
            key = (info.name, qual)
            if key in self.worker_entry:
                continue
            self.worker_entry[key] = entry
            fn = info.functions.get(qual)
            if fn is None:
                continue
            for call in ast.walk(fn):
                if not isinstance(call, ast.Call):
                    continue
                resolved = self.graph.resolve_call(call.func, info)
                if resolved is None:
                    continue
                callee_info, callee_qual = resolved
                if callee_qual in callee_info.classes:
                    callee_qual = f"{callee_qual}.__init__"
                if callee_qual in callee_info.functions:
                    frontier.append((callee_info, callee_qual, entry))

    # -- verdicts ------------------------------------------------------------

    def _hits(self) -> Dict[str, List[Hit]]:
        """module name -> flow hits for worker-side global accesses."""
        out: Dict[str, List[Hit]] = {}
        for key, entry in sorted(self.worker_entry.items()):
            accesses = self.accesses.get(key, [])
            for access in accesses:
                if access.target.module in EXEMPT_MODULES:
                    # The scoped-registry implementation rebinds its own
                    # global by design; that IS the sanctioned pattern.
                    continue
                if access.kind == "read" \
                        and access.target not in self.runtime_written:
                    # Populated once at import time (a registry): every
                    # process sees the same contents; reads are safe.
                    continue
                module_name, qual = key
                verb = "writes" if access.kind == "write" else "reads"
                message = (
                    f"worker-callable {qual}() (reaches a process pool via "
                    f"{entry}()) {verb} module-level mutable "
                    f"'{access.target.name}' of {access.target.module}; "
                    f"parent and worker copies diverge across fork/spawn — "
                    f"use the scoped-registry pattern "
                    f"(repro.obs.registry.scoped_registry) or pass state "
                    f"through task payloads and returns")
                out.setdefault(module_name, []).append(
                    Hit(access.line, access.col + 1, message))
        for module_name in out:
            out[module_name] = sorted(set(out[module_name]))
        return out


@rule
class ForkShareRule(Rule):
    id = "RPR009"
    summary = ("worker-callable code touches module-level mutable state; "
               "fork/spawn copies diverge — use scoped registries or "
               "explicit task payloads")
    requires_project = True

    @staticmethod
    def _analysis(project) -> _ShareAnalysis:
        return project.memo(
            "rpr009.share",
            lambda: _ShareAnalysis(
                project.graph,
                extra_written=getattr(project, "extra_global_writes", None)))

    def warm(self, project) -> None:
        self._analysis(project)

    def check(self, context: FileContext) -> Iterator[Violation]:
        project = context.project
        if project is None:
            return
        info = project.graph.module_for_path(context.path)
        if info is None:
            return
        analysis = self._analysis(project)
        for hit in analysis.hits_by_module.get(info.name, []):
            yield Violation(self.id, str(context.path), hit.line, hit.col,
                            hit.message)
