"""RPR009 — fork-share races: no parent-process globals in worker code.

The store executor, the multi-cell sim driver, and the campaign runner
all fan work out over ``multiprocessing`` pools.  Under ``fork`` start
methods a worker begins with a *copy* of the parent's memory: a
module-level dict the parent mutated is silently stale in the worker,
a dict the worker mutates silently never reaches the parent, and under
``spawn`` the same global is re-created empty — three different
behaviours for one line of code, none of them an error message.  The
sanctioned escape is the scoped-registry pattern
(:func:`repro.obs.registry.scoped_registry`): workers record into a
fresh registry and ship an explicit snapshot home.

This rule finds every function *submitted to a pool* (``map_reduce``
callables, ``pool.imap``/``map``/``apply_async``/... targets, through
``functools.partial`` and local aliases), takes the transitive closure
over the project call graph, and inside that worker-callable set flags
direct reads and writes of module-level **mutable** state — dict/list/
set displays and constructors, and instances of project classes —
whenever that state is also written at runtime somewhere in the
project (writes in worker code are flagged unconditionally).  Globals
defined in ``repro.obs.registry`` itself are exempt: they *are* the
pattern.

Like the other flow rules this is whole-program: the submission site,
the worker function, and the shared global are routinely in three
different files, which is exactly why the per-file RPR003 cannot see
the race.

Unlike RPR008/RPR010, whose facts flow *with* the import direction
(a file's verdict depends only on modules it imports), RPR009 facts
flow *against* it: the submission site importing the worker decides
the worker's verdict.  Reverse-import invalidation therefore cannot
make cached per-file verdicts sound.  Instead the analysis is split
into two stages:

1. :func:`summarize_module` extracts a small JSON-able **fact summary**
   per module (mutable globals, global accesses, resolved call edges,
   pool-submission seeds).  A summary depends only on the module's own
   source and its forward dependency closure, so the ordinary dirty
   rule (changed ∪ reverse-import-closure) keeps cached summaries
   valid.
2. :class:`_ShareAnalysis` is a pure function of the full summary map
   — worker closure, runtime-write facts, and verdicts are recomputed
   *globally* on every run, from fresh summaries for parsed files and
   cached ones for the rest.  Warm verdicts are therefore identical to
   cold ones by construction.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, NamedTuple, Optional, Set, Tuple

from repro.lint.core import FileContext, Rule, Violation, rule
from repro.lint.flow import Hit
from repro.lint.graph import ModuleInfo, ProjectGraph
from repro.lint.names import dotted_name

#: Pool-submission attribute methods that always take a callable first.
POOL_METHODS = frozenset({"imap", "imap_unordered", "map_async",
                          "starmap", "starmap_async", "apply_async"})
#: Generic names that only count on pool/executor-ish receivers.
POOL_METHODS_GUARDED = frozenset({"map", "apply", "submit"})
#: The store executor's fan-out entry (see RPR003).
EXECUTOR_METHODS = frozenset({"map_reduce"})
EXECUTOR_KEYWORDS = ("map_fn", "reduce_fn")

#: Constructor calls producing shared-mutable module state.
MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "collections.defaultdict",
    "collections.OrderedDict", "collections.deque", "collections.Counter",
})

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "update", "clear", "pop", "popleft",
    "popitem", "setdefault", "extend", "remove", "discard", "insert",
})

#: The scoped-registry implementation is the sanctioned shared state.
EXEMPT_MODULES = frozenset({"repro.obs.registry"})

_MAX_ALIAS_HOPS = 3


class _Global(NamedTuple):
    module: str
    name: str


class _Access(NamedTuple):
    target: _Global
    line: int
    col: int
    kind: str  # "read" | "write" | "rebind"


#: One access as serialized in a summary: [module, var, line, col, kind].
_AccessRow = Tuple[str, str, int, int, str]


def empty_summary() -> Dict[str, object]:
    """The fact summary of a module contributing nothing (e.g. one that
    failed to parse)."""
    return {"mutables": [], "accesses": {}, "calls": {}, "seeds": []}


def _mutable_globals(info: ModuleInfo, graph: ProjectGraph) -> Set[str]:
    """Names of ``info``'s module-level assignments holding mutable state."""
    out: Set[str] = set()
    for name, value in info.global_values.items():
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                              ast.SetComp, ast.DictComp)):
            out.add(name)
        elif isinstance(value, ast.Call):
            canonical = _canonical(value.func, info)
            if canonical in MUTABLE_CONSTRUCTORS:
                out.add(name)
                continue
            resolved = graph.resolve_call(value.func, info)
            if resolved is not None and resolved[1] in resolved[0].classes:
                out.add(name)
    return out


def _canonical(node: ast.AST, info: ModuleInfo) -> Optional[str]:
    dotted = dotted_name(node)
    if dotted is None:
        return None
    root, _, rest = dotted.partition(".")
    canonical_root = info.import_map.canonical(root)
    if canonical_root is None:
        return dotted
    return f"{canonical_root}.{rest}" if rest else canonical_root


def _local_names(fn: ast.AST) -> Set[str]:
    """Names bound locally in ``fn`` (params + assignments), minus any
    declared ``global``."""
    out: Set[str] = set()
    args = getattr(fn, "args", None)
    if args is not None:
        for a in (args.posonlyargs + args.args + args.kwonlyargs):
            out.add(a.arg)
        if args.vararg is not None:
            out.add(args.vararg.arg)
        if args.kwarg is not None:
            out.add(args.kwarg.arg)
    declared_global: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            out.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    out.add(name_node.id)
    return out - declared_global


# ---------------------------------------------------------------------------
# stage 1 — per-module fact summaries (cacheable)


def _candidate_ref(node: ast.AST, info: ModuleInfo,
                   local: Set[str],
                   known_modules: Set[str]) -> Optional[_Global]:
    """The module-level global a Name/Attribute reference *may* point at.

    Candidates are filtered locally only (own globals for bare names,
    project-module attribute roots for dotted ones); whether the target
    is actually tracked mutable state is decided later, globally, in
    :class:`_ShareAnalysis` — other modules' shapes may change between
    the summary being cached and being used.
    """
    if isinstance(node, ast.Name):
        if node.id in local or node.id not in info.global_values:
            return None
        return _Global(info.name, node.id)
    if isinstance(node, ast.Attribute):
        canonical = _canonical(node, info)
        if canonical is None:
            return None
        module_part, _, attr = canonical.rpartition(".")
        if module_part not in known_modules:
            return None
        return _Global(module_part, attr)
    return None


def _scan_function(info: ModuleInfo, fn: ast.AST,
                   known_modules: Set[str]) -> List[_Access]:
    """Candidate accesses of module-level globals inside ``fn``."""
    local = _local_names(fn)
    declared_global: Set[str] = set()
    out: List[_Access] = []

    def ref(node: ast.AST) -> Optional[_Global]:
        return _candidate_ref(node, info, local, known_modules)

    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    # Receivers already accounted for by an enclosing mutator call or
    # subscript (their Name/Attribute children appear later in the
    # walk) — one syntactic access, one recorded access.
    consumed: Set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id in declared_global \
                and isinstance(node.ctx, (ast.Store, ast.Del)):
            # Rebinding any module global from a function is a runtime
            # write, mutable value-shape or not.
            out.append(_Access(_Global(info.name, node.id), node.lineno,
                               node.col_offset, "rebind"))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in MUTATOR_METHODS:
            consumed.add(id(node.func))
            consumed.add(id(node.func.value))
            target = ref(node.func.value)
            if target is not None:
                out.append(_Access(target, node.lineno,
                                   node.col_offset, "write"))
        elif isinstance(node, ast.Subscript):
            consumed.add(id(node.value))
            target = ref(node.value)
            if target is not None:
                kind = "write" if isinstance(node.ctx,
                                             (ast.Store, ast.Del)) \
                    else "read"
                out.append(_Access(target, node.lineno,
                                   node.col_offset, kind))
        elif isinstance(node, (ast.Name, ast.Attribute)) \
                and isinstance(getattr(node, "ctx", None), ast.Load) \
                and id(node) not in consumed:
            target = ref(node)
            if target is not None:
                out.append(_Access(target, node.lineno,
                                   node.col_offset, "read"))
    return out


def _callable_ref(graph: ProjectGraph, node: ast.AST, info: ModuleInfo,
                  local_assigns: Dict[str, ast.AST],
                  hops: int = 0) -> Optional[Tuple[ModuleInfo, str]]:
    """Resolve a callable argument to a project function, through
    ``functools.partial`` wrappers and simple local aliases."""
    if hops > _MAX_ALIAS_HOPS:
        return None
    if isinstance(node, ast.Call):
        canonical = _canonical(node.func, info)
        if canonical is not None and canonical.endswith("partial") \
                and node.args:
            return _callable_ref(graph, node.args[0], info, local_assigns,
                                 hops + 1)
        return None
    if isinstance(node, ast.Name) and node.id in local_assigns:
        return _callable_ref(graph, local_assigns[node.id], info,
                             local_assigns, hops + 1)
    if isinstance(node, (ast.Name, ast.Attribute)):
        return graph.resolve_call(node, info)
    return None


def _as_function(resolved: Tuple[ModuleInfo, str]) -> Optional[Tuple[str, str]]:
    """Normalize a resolved target to a concrete function key
    (classes map to ``Class.__init__``); None if no body to analyze."""
    target_info, qual = resolved
    if qual in target_info.classes:
        qual = f"{qual}.__init__"
    if qual not in target_info.functions:
        return None
    return (target_info.name, qual)


def _submission_seeds(info: ModuleInfo,
                      graph: ProjectGraph) -> List[Tuple[str, str, str]]:
    """(callee module, callee qualname, entry description) for every
    callable handed to a pool in ``info``'s functions."""
    seeds: List[Tuple[str, str, str]] = []
    for qual in sorted(info.functions):
        fn = info.functions[qual]
        local_assigns: Dict[str, ast.AST] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                local_assigns[node.targets[0].id] = node.value
        for call in ast.walk(fn):
            if not (isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)):
                continue
            attr = call.func.attr
            candidates: List[ast.AST] = []
            if attr in EXECUTOR_METHODS:
                candidates = list(call.args[:2])
                candidates += [kw.value for kw in call.keywords
                               if kw.arg in EXECUTOR_KEYWORDS]
            elif attr in POOL_METHODS:
                candidates = list(call.args[:1])
                candidates += [kw.value for kw in call.keywords
                               if kw.arg == "func"]
            elif attr in POOL_METHODS_GUARDED:
                receiver = dotted_name(call.func.value) or ""
                if "pool" in receiver.lower() \
                        or "executor" in receiver.lower():
                    candidates = list(call.args[:1])
            if not candidates:
                continue
            entry = f"{info.name}.{qual}"
            for candidate in candidates:
                resolved = _callable_ref(graph, candidate, info,
                                         local_assigns)
                if resolved is None:
                    continue
                key = _as_function(resolved)
                if key is not None:
                    seeds.append((key[0], key[1], entry))
    return seeds


def _call_edges(info: ModuleInfo,
                graph: ProjectGraph) -> Dict[str, List[Tuple[str, str]]]:
    """qualname -> resolved project callees, for the worker closure."""
    out: Dict[str, List[Tuple[str, str]]] = {}
    for qual in sorted(info.functions):
        fn = info.functions[qual]
        edges: Set[Tuple[str, str]] = set()
        for call in ast.walk(fn):
            if not isinstance(call, ast.Call):
                continue
            resolved = graph.resolve_call(call.func, info)
            if resolved is None:
                continue
            key = _as_function(resolved)
            if key is not None:
                edges.add(key)
        if edges:
            out[qual] = sorted(edges)
    return out


def summarize_module(info: ModuleInfo,
                     graph: ProjectGraph) -> Dict[str, object]:
    """The cacheable RPR009 fact summary of one parsed module.

    Everything here depends only on ``info``'s own source plus symbol
    resolution through its forward dependency closure — exactly the
    inputs the cache's dirty rule (changed ∪ reverse-import-closure)
    already invalidates on, so a cached summary of an unchanged,
    non-dirty file is always current.
    """
    known = graph.known_modules
    accesses: Dict[str, List[_AccessRow]] = {}
    for qual in sorted(info.functions):
        found = _scan_function(info, info.functions[qual], known)
        if found:
            accesses[qual] = [(a.target.module, a.target.name,
                               a.line, a.col, a.kind) for a in found]
    return {
        "mutables": sorted(_mutable_globals(info, graph)),
        "accesses": accesses,
        "calls": {qual: [list(edge) for edge in edges]
                  for qual, edges in _call_edges(info, graph).items()},
        "seeds": [list(seed) for seed in _submission_seeds(info, graph)],
    }


# ---------------------------------------------------------------------------
# stage 2 — global analysis over the full summary map


class _ShareAnalysis:
    """Worker closure, runtime-write facts, and verdicts — a pure
    function of the per-module summary map, recomputed globally on
    every run so warm results always match cold ones."""

    def __init__(self, summaries: Dict[str, Dict[str, object]]):
        #: (module, name) of every tracked mutable global.
        self.mutables: Set[_Global] = set()
        for module in sorted(summaries):
            if module in EXEMPT_MODULES:
                continue
            for name in summaries[module].get("mutables", ()):  # type: ignore[union-attr]
                self.mutables.add(_Global(module, str(name)))
        #: function key -> accesses of tracked globals inside it.
        self.accesses: Dict[Tuple[str, str], List[_Access]] = {}
        #: globals written at runtime (from any project function).
        self.runtime_written: Set[_Global] = set()
        for module in sorted(summaries):
            raw = summaries[module].get("accesses", {})
            if not isinstance(raw, dict):
                continue
            for qual in sorted(raw):
                found: List[_Access] = []
                for row in raw[qual]:
                    target_mod, var, line, col, kind = row
                    target = _Global(str(target_mod), str(var))
                    if kind != "rebind" and target not in self.mutables:
                        continue
                    found.append(_Access(target, int(line), int(col),
                                         str(kind)))
                    if kind in ("write", "rebind"):
                        self.runtime_written.add(target)
                if found:
                    self.accesses[(module, qual)] = found
        #: worker-callable closure: function key -> entry description.
        self.worker_entry: Dict[Tuple[str, str], str] = {}
        self._build_closure(summaries)
        #: module name -> hits, computed once per project.
        self.hits_by_module: Dict[str, List[Hit]] = self._hits()

    def _build_closure(self,
                       summaries: Dict[str, Dict[str, object]]) -> None:
        calls: Dict[Tuple[str, str], List[Tuple[str, str]]] = {}
        seeds: List[Tuple[str, str, str]] = []
        for module in sorted(summaries):
            summary = summaries[module]
            raw_calls = summary.get("calls", {})
            if isinstance(raw_calls, dict):
                for qual in sorted(raw_calls):
                    calls[(module, qual)] = [
                        (str(edge[0]), str(edge[1]))
                        for edge in raw_calls[qual]]
            for seed in summary.get("seeds", ()):  # type: ignore[union-attr]
                seeds.append((str(seed[0]), str(seed[1]), str(seed[2])))
        frontier = sorted(seeds, reverse=True)
        while frontier:
            module, qual, entry = frontier.pop()
            key = (module, qual)
            if key in self.worker_entry:
                continue
            self.worker_entry[key] = entry
            for callee in calls.get(key, ()):
                frontier.append((callee[0], callee[1], entry))

    def _hits(self) -> Dict[str, List[Hit]]:
        """module name -> flow hits for worker-side global accesses."""
        out: Dict[str, List[Hit]] = {}
        for key, entry in sorted(self.worker_entry.items()):
            for access in self.accesses.get(key, []):
                if access.target.module in EXEMPT_MODULES:
                    # The scoped-registry implementation rebinds its own
                    # global by design; that IS the sanctioned pattern.
                    continue
                if access.kind == "read" \
                        and access.target not in self.runtime_written:
                    # Populated once at import time (a registry): every
                    # process sees the same contents; reads are safe.
                    continue
                module_name, qual = key
                verb = "reads" if access.kind == "read" else "writes"
                message = (
                    f"worker-callable {qual}() (reaches a process pool via "
                    f"{entry}()) {verb} module-level mutable "
                    f"'{access.target.name}' of {access.target.module}; "
                    f"parent and worker copies diverge across fork/spawn — "
                    f"use the scoped-registry pattern "
                    f"(repro.obs.registry.scoped_registry) or pass state "
                    f"through task payloads and returns")
                out.setdefault(module_name, []).append(
                    Hit(access.line, access.col + 1, message))
        for module_name in out:
            out[module_name] = sorted(set(out[module_name]))
        return out


def project_analysis(project: object) -> _ShareAnalysis:
    """The (memoized) global RPR009 analysis for one project run.

    The driver calls this too — even when no file needs re-analysis —
    to reconcile cached verdicts whenever the summary map could have
    changed (RPR009 facts flow against import edges, so per-file cache
    invalidation alone cannot keep them sound).
    """
    summaries: Dict[str, Dict[str, object]] = \
        getattr(project, "share_summaries", {})
    return project.memo(  # type: ignore[attr-defined, no-any-return]
        "rpr009.share", lambda: _ShareAnalysis(summaries))


@rule
class ForkShareRule(Rule):
    id = "RPR009"
    summary = ("worker-callable code touches module-level mutable state; "
               "fork/spawn copies diverge — use scoped registries or "
               "explicit task payloads")
    requires_project = True

    def warm(self, project: object) -> None:
        project_analysis(project)

    def check(self, context: FileContext) -> Iterator[Violation]:
        project = context.project
        if project is None:
            return
        info = project.graph.module_for_path(context.path)  # type: ignore[attr-defined]
        if info is None:
            return
        analysis = project_analysis(project)
        for hit in analysis.hits_by_module.get(info.name, []):
            yield Violation(self.id, str(context.path), hit.line, hit.col,
                            hit.message)
