"""RPR006 — obs discipline: span names must be literal strings.

The span-tree structure exported by :mod:`repro.obs` is part of the
repo's determinism contract (DESIGN.md §9): two runs of the same program
must produce the same tree of span *names*.  A name computed at runtime
— an f-string with a chunk index, a ``"sim." + kind`` concatenation, a
variable — silently turns the bounded, diffable tree into an unbounded
one whose shape depends on data, and breaks the golden span-structure
assertions.  Counters may be dynamic (they are flat and merge by name);
spans may not.  This rule requires the name argument of
``obs.span(...)`` and ``obs.traced(...)`` to be a plain string literal
at the call site.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import FileContext, Rule, Violation, rule
from repro.lint.names import ImportMap, resolve_dotted

#: Canonical callables whose first argument names a span.
SPAN_FACTORIES = frozenset({
    "repro.obs.span",
    "repro.obs.traced",
    "repro.obs.Span",
})


def _span_name_arg(call: ast.Call) -> Optional[ast.AST]:
    """The expression passed as the span name, or None if absent."""
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg == "name":
            return kw.value
    return None


@rule
class ObsDisciplineRule(Rule):
    id = "RPR006"
    summary = ("obs span names must be literal strings — computed names "
               "make the span-tree structure data-dependent")

    def check(self, context: FileContext) -> Iterator[Violation]:
        imports = ImportMap(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolve_dotted(node.func, imports)
            if resolved not in SPAN_FACTORIES:
                continue
            short = resolved.rsplit(".", 1)[1]
            arg = _span_name_arg(node)
            if arg is None:
                yield self.violation(
                    context, node,
                    f"obs.{short}() call is missing its span name")
                continue
            if not (isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)):
                described = ast.unparse(arg)
                yield self.violation(
                    context, arg,
                    f"obs.{short}() name must be a string literal, not "
                    f"{described!r}; dynamic span names make the span "
                    "tree's structure depend on data (use a counter for "
                    "per-key cardinality instead)")
