"""RPR001 — schema consistency: column strings must exist in their table.

Every analysis reads trace tables through string column names
(``iu.column("avg_cpu")``, ``scan.select("tier")``,
``Compare("priority", ">=", 360)``).  A typo'd or renamed column is not
a syntax error and often not even a unit-test failure — it surfaces as a
``SchemaError`` deep inside whichever query first touches it, possibly
hours into a month-scale run.  This rule resolves, per function, which
canonical table each expression refers to (dataset properties like
``trace.instance_usage``, ``trace.tables["..."]`` subscripts, and
``store.scan("...")`` chains) and checks every literal column reference
against :mod:`repro.trace.schema`.

The analysis is deliberately precision-first: when the table cannot be
statically resolved (function parameters, derived tables, dynamic
names), the reference is *not* checked.  Everything it does flag is a
real schema mismatch.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.core import FileContext, Rule, Violation, rule
from repro.trace.schema import TABLE_COLUMNS

#: Dataset attribute names that canonically name a table.
TABLE_PROPERTIES = frozenset(TABLE_COLUMNS)

#: Table methods whose string arguments are column names of that table.
TABLE_COLUMN_METHODS = frozenset({
    "column", "select", "distinct", "sort", "group_by",
})

#: Table methods returning the same table shape (tracking survives;
#: ``distinct`` dedupes rows but keeps every column).
TABLE_PRESERVING_METHODS = frozenset({"filter", "head", "take", "sort",
                                      "distinct"})

#: Scan methods returning a scan over the same table.
SCAN_PRESERVING_METHODS = frozenset({"where", "select"})

#: Predicate constructors whose first argument is a column name.
PREDICATE_CONSTRUCTORS = frozenset({"Compare", "Between", "IsIn"})

#: Resolution results: ("table", name) or ("scan", name).
_Resolved = Optional[Tuple[str, str]]


class _TableResolver(ast.NodeVisitor):
    """Per-function, order-of-appearance table/scan identity tracking."""

    def __init__(self, rule_: "SchemaConsistencyRule", context: FileContext):
        self.rule = rule_
        self.context = context
        self.violations: List[Violation] = []
        #: Stack of variable-binding scopes (module, then one per function).
        self.bindings: List[Dict[str, _Resolved]] = [{}]

    # -- resolution ----------------------------------------------------------

    def lookup(self, name: str) -> _Resolved:
        for scope in reversed(self.bindings):
            if name in scope:
                return scope[name]
        return None

    def resolve(self, node: ast.AST) -> _Resolved:
        """What table/scan ``node`` denotes, or None when unprovable."""
        if isinstance(node, ast.Name):
            return self.lookup(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr in TABLE_PROPERTIES:
                return ("table", node.attr)
            return None
        if isinstance(node, ast.Subscript):
            # X.tables["collection_events"] (and X["collection_events"]
            # when X itself resolves to nothing) -> that table.
            if isinstance(node.value, ast.Attribute) \
                    and node.value.attr == "tables":
                key = node.slice
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str) \
                        and key.value in TABLE_COLUMNS:
                    return ("table", key.value)
            return None
        if isinstance(node, ast.Call):
            func = node.func
            if not isinstance(func, ast.Attribute):
                return None
            if func.attr == "scan" and node.args \
                    and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                return ("scan", node.args[0].value)
            receiver = self.resolve(func.value)
            if receiver is None:
                return None
            kind, table = receiver
            if kind == "scan" and func.attr in SCAN_PRESERVING_METHODS:
                return receiver
            if kind == "table" and func.attr in TABLE_PRESERVING_METHODS:
                return receiver
            if kind == "scan" and func.attr == "to_table":
                return ("table", table)
            return None
        return None

    # -- scope handling ------------------------------------------------------

    def _visit_function(self, node) -> None:
        self.bindings.append({})
        self.generic_visit(node)
        self.bindings.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        resolved = self.resolve(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                # Unknown values overwrite stale bindings: once a name is
                # reassigned to something unprovable, stop checking it.
                self.bindings[-1][target.id] = resolved

    # -- checks --------------------------------------------------------------

    def _check_column(self, table: str, arg: ast.expr, where: str) -> None:
        if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
            return
        if arg.value in TABLE_COLUMNS[table]:
            return
        self.violations.append(self.rule.violation(
            self.context, arg,
            f"column {arg.value!r} does not exist in table {table!r} "
            f"({where}); known columns: {TABLE_COLUMNS[table]}",
        ))

    def _check_predicates(self, table: str, node: ast.AST) -> None:
        """Validate predicate-constructor column args under a where()."""
        for call in ast.walk(node):
            if not isinstance(call, ast.Call) or not call.args:
                continue
            func = call.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if name in PREDICATE_CONSTRUCTORS:
                self._check_column(table, call.args[0], f"predicate {name}")

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = self.resolve(func.value)
        if receiver is None:
            return
        kind, table = receiver
        if kind == "table" and func.attr in TABLE_COLUMN_METHODS:
            for arg in node.args:
                self._check_column(table, arg, f"Table.{func.attr}")
        elif kind == "scan":
            if func.attr == "select":
                for arg in node.args:
                    self._check_column(table, arg, "Scan.select")
            elif func.attr == "where":
                for arg in node.args:
                    self._check_predicates(table, arg)


@rule
class SchemaConsistencyRule(Rule):
    id = "RPR001"
    summary = ("column name not in the canonical schema of the table "
               "being read (repro/trace/schema.py)")

    def check(self, context: FileContext) -> Iterator[Violation]:
        resolver = _TableResolver(self, context)
        resolver.visit(context.tree)
        yield from resolver.violations
