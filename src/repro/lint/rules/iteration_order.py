"""RPR010 — iteration-order stability: no unordered data in output.

Python sets iterate in hash order, and string hashing is randomized per
process (``PYTHONHASHSEED``); directory listings come back in
filesystem order.  A list built from either is a different list on the
next run — harmless until it lands in something we diff byte-for-byte:
a golden-figure JSON, a flight-recorder frame, a campaign cache key.
The per-file rules cannot see the hop from ``list({...})`` in one
module to ``json.dumps(...)`` in another; this rule runs the
:mod:`repro.lint.flow` engine with *unordered iteration* as the taint:

* **sources** — set displays and comprehensions, ``set(...)`` /
  ``frozenset(...)``, ``os.listdir`` / ``os.scandir``,
  ``glob.glob`` / ``glob.iglob``, and ``.iterdir()`` / ``.glob()`` /
  ``.rglob()`` path methods;
* **sanitizer** — ``sorted(...)`` (and order-free reductions such as
  ``len``/``sum``/``min``/``max`` are neutral);
* **sinks** — ``json.dump`` / ``json.dumps`` and the campaign cache-key
  functions (``canonical_json`` / ``point_key`` / ``normalize``), whose
  list order feeds content-addressed keys.

Anchored at the unordered source, not the sink: the fix is almost
always a ``sorted()`` at the point where order is surrendered.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.core import rule
from repro.lint.flow import FlowRule, FlowSpec

#: Canonical call names that produce unordered (hash-order) collections.
UNORDERED_CALLS = frozenset({"set", "frozenset"})

#: Canonical call names that produce filesystem-order listings.
FS_ORDER_CALLS = frozenset({"os.listdir", "os.scandir",
                            "glob.glob", "glob.iglob"})

#: Method names (on any receiver) that walk the filesystem unsorted.
FS_ORDER_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: JSON/serialization entry points whose arguments must be order-stable.
JSON_SINKS = frozenset({"json.dump", "json.dumps"})

#: Project functions whose arguments feed content-addressed cache keys.
KEY_SINK_MODULE = "repro.campaign.cache_key"
KEY_SINK_FUNCTIONS = frozenset({"canonical_json", "point_key", "normalize"})


class IterationOrderSpec(FlowSpec):
    rule_id = "RPR010"
    sanitizers = frozenset({"sorted"})
    neutral = frozenset({"len", "sum", "min", "max", "any", "all"})

    def source_call(self, canonical: Optional[str],
                    call: ast.Call) -> Optional[str]:
        if canonical in UNORDERED_CALLS:
            return f"unordered {canonical}(...)"
        if canonical in FS_ORDER_CALLS:
            return f"filesystem-order {canonical}()"
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr in FS_ORDER_METHODS:
            return f"filesystem-order .{call.func.attr}()"
        return None

    def source_expr(self, node: ast.expr,
                    canonical: Optional[str]) -> Optional[str]:
        if isinstance(node, ast.Set):
            return "unordered set literal"
        if isinstance(node, ast.SetComp):
            return "unordered set comprehension"
        return None

    def sink_call(self, canonical, resolved, call, module) -> Optional[str]:
        if canonical in JSON_SINKS:
            return f"JSON emission {canonical}()"
        if resolved is not None and resolved[0].name == KEY_SINK_MODULE \
                and resolved[1] in KEY_SINK_FUNCTIONS:
            return (f"the content-addressed cache key "
                    f"({KEY_SINK_MODULE}.{resolved[1]}())")
        return None

    def advice(self) -> str:
        return ("byte-identical reruns require a stable order — wrap the "
                "unordered iterable in sorted() before it is serialized")


@rule
class IterationOrderRule(FlowRule):
    id = "RPR010"
    summary = ("unordered iteration (set / filesystem order) flows into "
               "JSON or cache-key output without sorted()")
    spec = IterationOrderSpec()
