"""RPR003 — fork-safety: executor callables must be importable by name.

``repro.store``'s parallel executor ships every chunk task to worker
*processes*; the map/reduce callables travel by pickle, which serializes
functions by qualified name.  A lambda, a function defined inside
another function (a closure), or a bound method of a local object
pickles either not at all or with surprising state — and the failure
only appears once ``workers > 1``, which the fast test paths never use.
This rule rejects those shapes at the call site of
``Scan.map_reduce(map_fn, reduce_fn)`` so the serial and parallel paths
cannot drift: module-level functions (optionally wrapped in
``functools.partial``) are the only accepted currency.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.core import FileContext, Rule, Violation, rule
from repro.lint.names import ImportMap

#: Method names whose callable arguments cross the process boundary.
EXECUTOR_METHODS = frozenset({"map_reduce"})

#: Positional/keyword callable parameters of those methods.
CALLABLE_KEYWORDS = ("map_fn", "reduce_fn")
MAX_CALLABLE_POSITIONS = 2


class _Scopes:
    """Function-nesting context: which names are local function defs."""

    def __init__(self) -> None:
        #: One set per enclosing *function* scope: names of functions
        #: and lambdas defined there (referencing one from deeper inside
        #: makes it a closure as far as pickle is concerned).
        self.stack: List[Set[str]] = []

    def is_nested_function(self, name: str) -> bool:
        return any(name in scope for scope in self.stack)


@rule
class ForkSafetyRule(Rule):
    id = "RPR003"
    summary = ("executor callable is not importable by worker processes; "
               "pass a module-level function (or functools.partial of one)")

    def check(self, context: FileContext) -> Iterator[Violation]:
        imports = ImportMap(context.tree)
        scopes = _Scopes()
        yield from self._visit_body(context, context.tree, imports, scopes,
                                    in_function=False)

    # -- traversal -----------------------------------------------------------

    def _visit_body(self, context: FileContext, node: ast.AST,
                    imports: ImportMap, scopes: _Scopes,
                    in_function: bool) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if in_function:
                    scopes.stack[-1].add(child.name)
                scopes.stack.append(set())
                yield from self._visit_body(context, child, imports, scopes,
                                            in_function=True)
                scopes.stack.pop()
                continue
            if in_function and isinstance(child, ast.Assign) \
                    and isinstance(child.value, ast.Lambda):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        scopes.stack[-1].add(target.id)
            if isinstance(child, ast.Call):
                yield from self._check_call(context, child, imports, scopes)
            yield from self._visit_body(context, child, imports, scopes,
                                        in_function)

    # -- the actual check ----------------------------------------------------

    def _check_call(self, context: FileContext, call: ast.Call,
                    imports: ImportMap,
                    scopes: _Scopes) -> Iterator[Violation]:
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in EXECUTOR_METHODS):
            return
        candidates = list(call.args[:MAX_CALLABLE_POSITIONS])
        candidates += [kw.value for kw in call.keywords
                       if kw.arg in CALLABLE_KEYWORDS]
        for arg in candidates:
            problem = self._unpicklable(arg, imports, scopes)
            if problem is not None:
                yield self.violation(
                    context, arg,
                    f"{problem} passed to {func.attr}() cannot be shipped "
                    "to worker processes (pickle imports callables by "
                    "name); define it at module level",
                )

    def _unpicklable(self, node: ast.AST, imports: ImportMap,
                     scopes: _Scopes) -> Optional[str]:
        """Why ``node`` won't survive pickling (None when provably fine
        or not provable — module-level defs, imports, and unknown names
        pass)."""
        if isinstance(node, ast.Lambda):
            return "lambda"
        if isinstance(node, ast.Name):
            if scopes.is_nested_function(node.id):
                return f"nested function {node.id!r} (a closure)"
            return None
        if isinstance(node, ast.Attribute):
            # functools.partial / module.function style chains are fine;
            # an attribute whose root is a plain local object is a bound
            # method and drags the whole instance through pickle.
            root = node.value
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and imports.is_imported(root.id):
                return None
            described = ast.unparse(node)
            return f"bound method {described!r}"
        if isinstance(node, ast.Call):
            # partial(f, ...): judge the wrapped callable.
            inner_name = node.func
            target = inner_name.attr if isinstance(inner_name, ast.Attribute) \
                else (inner_name.id if isinstance(inner_name, ast.Name) else "")
            if target == "partial" and node.args:
                return self._unpicklable(node.args[0], imports, scopes)
            return None
        return None
