"""RPR007 — hot-loop guards: telemetry hooks in simulator loops stay gated.

The flight recorder and the sampling profiler are *opt-in* telemetry:
an unrecorded simulation must pay at most one comparison per event for
their existence (DESIGN.md §11).  That only holds if every
recorder/profiler call inside a simulator loop is lexically behind an
``if`` that names the handle — the pattern the event loop uses::

    if recorder is not None and time >= recorder.next_due:
        recorder.tick(time)

An unguarded ``recorder.tick(time)`` in the same loop would put a
Python call on the per-event path of every run, recorded or not, which
is exactly the slow creep the <=5% instrumentation budget exists to
stop.  The rule is scoped to :mod:`repro.sim`: set-up code (attach in a
constructor, ``finish`` after the loop) is free to call the recorder
unguarded, and the obs layer itself obviously may.

Mechanics: a call whose function's attribute chain mentions a
recorder/profiler handle (an identifier containing ``recorder`` or
``profiler``), lexically inside a ``for``/``while`` body (or a
comprehension), must have an enclosing ``if`` — inside or outside the
loop, up to the nearest function boundary — whose test mentions such a
handle.  A guard hoisted *outside* the loop is the cheapest form and
counts.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.lint.core import FileContext, Rule, Violation, rule

#: Directories (package components) the rule polices.
SCOPED_DIRS = ("sim",)

#: Substrings marking an identifier as a telemetry handle.
HANDLE_MARKERS = ("recorder", "profiler")

#: Nodes whose bodies re-execute per iteration.
_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)

#: Walking up stops here: an enclosing def runs on its own schedule.
_BOUNDARIES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.Module)


def _chain_identifiers(node: ast.AST) -> List[str]:
    """Identifiers along a call target: ``self.recorder.tick`` ->
    ``["tick", "recorder", "self"]`` (order is irrelevant here)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return parts


def _is_handle(identifier: str) -> bool:
    lowered = identifier.lower()
    return any(marker in lowered for marker in HANDLE_MARKERS)


def _test_mentions_handle(test: ast.AST) -> bool:
    """Whether an ``if`` test names any telemetry handle."""
    for sub in ast.walk(test):
        if isinstance(sub, ast.Name) and _is_handle(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and _is_handle(sub.attr):
            return True
    return False


@rule
class HotLoopGuardRule(Rule):
    id = "RPR007"
    summary = ("recorder/profiler call in a simulator loop without an "
               "if-guard naming the handle")

    def check(self, context: FileContext) -> Iterator[Violation]:
        if not context.in_directory(*SCOPED_DIRS):
            return
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(context.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if not any(_is_handle(part)
                       for part in _chain_identifiers(node.func)):
                continue
            if self._unguarded_in_loop(node, parents):
                yield self.violation(
                    context, node,
                    "recorder/profiler call on a simulator loop path must "
                    "be behind an 'if' naming the handle (e.g. 'if recorder "
                    "is not None: ...'), so unrecorded runs pay at most one "
                    "comparison per event",
                )

    @staticmethod
    def _unguarded_in_loop(call: ast.Call,
                           parents: Dict[ast.AST, ast.AST]) -> bool:
        in_loop = False
        prev: ast.AST = call
        cursor = parents.get(call)
        while cursor is not None and not isinstance(cursor, _BOUNDARIES):
            if isinstance(cursor, _COMPREHENSIONS):
                in_loop = True
            elif isinstance(cursor, _LOOPS) and prev not in cursor.orelse:
                # The loop body and a while's test run per iteration; a
                # for's iterable is evaluated once, outside the loop.
                if not (isinstance(cursor, (ast.For, ast.AsyncFor))
                        and prev is cursor.iter):
                    in_loop = True
            elif isinstance(cursor, ast.If) and prev in cursor.body \
                    and _test_mentions_handle(cursor.test):
                return False
            prev, cursor = cursor, parents.get(cursor)
        return in_loop
