"""RPR002 — determinism: no wall clocks or global RNG in the simulator.

The trace pipeline is only trustworthy if a simulation is a pure
function of its inputs: same scenario + same seed -> byte-identical
event stream.  Inside :mod:`repro.sim` and :mod:`repro.workload` that
means no wall-clock reads (``time.time``, ``datetime.now``) and no
global random state (``random.*``, legacy ``np.random.seed`` /
``np.random.rand`` ...); randomness flows exclusively through injected
``np.random.Generator`` streams (see :mod:`repro.util.rng`).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.core import FileContext, Rule, Violation, rule
from repro.lint.names import ImportMap, resolve_dotted

#: Directories (package components) the rule polices.
SCOPED_DIRS = ("sim", "workload")

#: Canonical dotted names of wall-clock reads.
WALL_CLOCKS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: ``numpy.random`` attributes that are *not* global mutable state:
#: generator/bit-generator types (fine in annotations and isinstance).
#: Everything else on ``numpy.random`` — including ``default_rng`` —
#: is banned here: simulation code must receive its Generator, never
#: mint one.
NP_RANDOM_ALLOWED = frozenset({
    "Generator", "SeedSequence", "BitGenerator", "PCG64", "PCG64DXSM",
    "Philox", "SFC64", "MT19937",
})


def _offense(canonical: Optional[str]) -> Optional[str]:
    """Why ``canonical`` is non-deterministic (None when it is fine)."""
    if canonical is None:
        return None
    if canonical in WALL_CLOCKS:
        return f"wall-clock read {canonical}()"
    if canonical == "random" or canonical.startswith("random."):
        return f"global-state RNG {canonical}"
    if canonical.startswith("numpy.random."):
        attr = canonical[len("numpy.random."):]
        if attr not in NP_RANDOM_ALLOWED:
            return f"legacy/global numpy RNG {canonical}"
    return None


@rule
class DeterminismRule(Rule):
    id = "RPR002"
    summary = ("non-deterministic call in sim/workload; use the injected "
               "np.random.Generator and trace timestamps")

    def check(self, context: FileContext) -> Iterator[Violation]:
        if not context.in_directory(*SCOPED_DIRS):
            return
        imports = ImportMap(context.tree)
        reported = set()
        for node in ast.walk(context.tree):
            # Attribute chains: np.random.seed, time.time, random.randint.
            # Only the outermost chain is checked; ast.walk also visits the
            # inner Attribute nodes, whose shorter chains simply don't match.
            if isinstance(node, (ast.Attribute, ast.Name)):
                canonical = resolve_dotted(node, imports)
                # A bare Name only offends if an import bound it to a
                # banned callable (``from time import time``).
                if isinstance(node, ast.Name) and \
                        imports.canonical(node.id) is None:
                    continue
                why = _offense(canonical)
                if why is None:
                    continue
                key = (node.lineno, node.col_offset)
                if key in reported:
                    continue
                reported.add(key)
                yield self.violation(
                    context, node,
                    f"{why}: simulation determinism requires injected "
                    "np.random.Generator streams and simulated time only",
                )
