"""RPR008 — determinism taint: nondeterminism may not reach sim state.

RPR002 polices *direct* wall-clock and global-RNG use inside
``repro.sim``/``repro.workload``, one file at a time.  It is blind to
the cross-module version of the same bug: a helper in ``repro.util``
that returns ``time.time()``, called from the simulator; an env-derived
default threaded through a constructor; an unseeded
``default_rng()`` minted three calls away from the event loop.  This
rule runs the :mod:`repro.lint.flow` taint engine over the whole
project: nondeterminism *sources* (wall clocks, global/unseeded RNG,
``os.urandom``/``uuid``/``secrets`` entropy, environment reads) taint
values through assignments and call returns, and a violation fires when
a tainted value

* is passed as an argument to any function or constructor defined in
  ``repro.sim``, ``repro.workload``, or ``repro.analysis`` (the
  golden-figure reducers), from anywhere in the project, or
* arrives inside ``repro.sim``/``repro.workload`` as the return value
  of a project call (nondeterminism imported into simulator scope).

Violations anchor at the line where the taint enters the reported file
(the source expression or the importing call), so a ``noqa`` is always
a judgement about a specific source, never a blanket on a sink.
"""

from __future__ import annotations

import ast
from typing import Optional, Tuple

from repro.lint.core import rule
from repro.lint.flow import FlowRule, FlowSpec
from repro.lint.graph import ModuleInfo
from repro.lint.rules.determinism import NP_RANDOM_ALLOWED, WALL_CLOCKS

#: Module prefixes whose functions/constructors are taint sinks.
SINK_PREFIXES = ("repro.sim", "repro.workload", "repro.analysis")

#: Module prefixes where *receiving* a tainted return value violates.
SCOPE_PREFIXES = ("repro.sim", "repro.workload")

#: Entropy / identity sources beyond RPR002's wall-clock + RNG lists.
ENTROPY_CALLS = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4"})


def _in_prefixes(name: str, prefixes: Tuple[str, ...]) -> bool:
    return any(name == p or name.startswith(p + ".") for p in prefixes)


class DeterminismTaintSpec(FlowSpec):
    rule_id = "RPR008"

    def source_call(self, canonical: Optional[str],
                    call: ast.Call) -> Optional[str]:
        if canonical is None:
            return None
        if canonical in WALL_CLOCKS:
            return f"wall-clock read {canonical}()"
        if canonical == "random" or (canonical.startswith("random.")
                                     and canonical != "random.Random"):
            return f"global-state RNG {canonical}()"
        if canonical.startswith("numpy.random."):
            attr = canonical[len("numpy.random."):]
            if attr == "default_rng":
                if not call.args and not call.keywords:
                    return "unseeded numpy.random.default_rng()"
                return None
            if attr not in NP_RANDOM_ALLOWED:
                return f"legacy/global numpy RNG {canonical}()"
        if canonical in ENTROPY_CALLS or canonical.startswith("secrets."):
            return f"entropy source {canonical}()"
        if canonical == "os.getenv":
            return "environment read os.getenv()"
        return None

    def source_expr(self, node: ast.expr,
                    canonical: Optional[str]) -> Optional[str]:
        if canonical is not None and (canonical == "os.environ"
                                      or canonical.startswith("os.environ.")):
            return "environment read os.environ"
        return None

    def sink_call(self, canonical, resolved, call, module) -> Optional[str]:
        if resolved is None:
            return None
        callee, qual = resolved
        if _in_prefixes(callee.name, SINK_PREFIXES):
            return f"{callee.name}.{qual}()"
        return None

    def call_site_sink(self, resolved, summary: Optional[str],
                       module: ModuleInfo) -> Optional[str]:
        if summary is None or resolved is None:
            return None
        if _in_prefixes(module.name, SCOPE_PREFIXES) \
                and not _in_prefixes(resolved[0].name, SCOPE_PREFIXES):
            return f"simulator scope ({module.name})"
        return None

    def advice(self) -> str:
        return ("simulation state, event payloads, and figure reducers "
                "must be pure functions of the scenario and its seed — "
                "inject an np.random.Generator or pass simulated time")


@rule
class DeterminismTaintRule(FlowRule):
    id = "RPR008"
    summary = ("nondeterministic value (wall clock, global/unseeded RNG, "
               "entropy, env read) flows into sim/workload/analysis state")
    spec = DeterminismTaintSpec()
