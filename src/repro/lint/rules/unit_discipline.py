"""RPR005 — unit discipline: no raw resource/time-magnitude literals.

All simulator and trace timestamps are seconds, and all resource values
are normalized units; the conversion constants live in
:mod:`repro.util.timeutil` and :mod:`repro.util.units`.  A raw ``3600``
in an analysis is a silent unit assumption — the exact class of bug the
paper's normalized-unit scheme (NCU/NMU, section 5) exists to prevent —
so every magnitude literal outside the two unit modules must go through
the named constant instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Union

from repro.lint.core import FileContext, Rule, Violation, rule

#: Magnitude -> the named constant that must be used instead.
MAGNITUDES: Dict[Union[int, float], str] = {
    3600: "repro.util.timeutil.HOUR_SECONDS",
    86400: "repro.util.timeutil.DAY_SECONDS",
    604800: "7 * repro.util.timeutil.DAY_SECONDS",
    1_048_576: "a MiB/GiB helper in repro.util.units",
    1_073_741_824: "a MiB/GiB helper in repro.util.units",
    1_099_511_627_776: "a TiB helper in repro.util.units",
    1_000_000_000: "a named constant in repro.util.units",
}

#: The two modules that *define* unit constants may spell out literals.
ALLOWED_FILES = ("units.py", "timeutil.py")


@rule
class UnitDisciplineRule(Rule):
    id = "RPR005"
    summary = ("raw resource/time-magnitude literal; use the named "
               "constant from repro.util")

    def check(self, context: FileContext) -> Iterator[Violation]:
        # Definition sites are exempt: the unit modules declare the
        # constants, and the lint package declares this very magnitude
        # table.
        if context.is_file(*ALLOWED_FILES) and context.in_directory("util"):
            return
        if context.in_directory("lint"):
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            magnitude = MAGNITUDES.get(abs(value))
            if magnitude is not None:
                yield self.violation(
                    context, node,
                    f"raw magnitude literal {value!r}; use {magnitude}",
                )
