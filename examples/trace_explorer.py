#!/usr/bin/env python
"""Ad-hoc trace exploration with the columnar query engine.

The paper's authors ran "near-arbitrary queries against a multi-GiB
dataset" on BigQuery (section 9); this example shows the equivalent
workflow here: persist a trace to disk, load it back, and answer
questions with the relational API (filter / group_by / join).

    python examples/trace_explorer.py [seed]
"""

import sys
import tempfile
from pathlib import Path

from repro.table import col
from repro.trace import encode_cell, load_trace, save_trace, to_2011_tables
from repro.util.timeutil import HOUR_SECONDS
from repro.workload import small_test_scenario


def main(seed: int = 4) -> None:
    print("== simulate and persist a trace ==")
    trace = encode_cell(small_test_scenario(seed=seed).run())
    workdir = Path(tempfile.mkdtemp(prefix="borg-trace-"))
    save_trace(trace, workdir)
    print(f"  wrote {sorted(p.name for p in workdir.iterdir())}")
    print(f"  to {workdir}")

    trace = load_trace(workdir)

    print("\n== Q1: who submits the most jobs? ==")
    submits = trace.collection_events.filter(
        (col("type") == "SUBMIT") & (col("collection_type") == "job"))
    top_users = (submits.group_by("user")
                 .agg(jobs=("collection_id", "nunique"))
                 .sort("jobs", descending=True)
                 .head(5))
    print(top_users.to_string())

    print("\n== Q2: kill rate by tier ==")
    terminals = trace.collection_events.filter(
        col("type").isin(["FINISH", "KILL", "FAIL", "EVICT"]))
    by_tier = (terminals
               .with_column("killed", col("type") == "KILL")
               .group_by("tier")
               .agg(jobs=("collection_id", "count"),
                    kill_rate=("killed", "mean"))
               .sort("tier"))
    print(by_tier.to_string())

    print("\n== Q3: join usage against machine capacity (hottest machines) ==")
    usage = trace.instance_usage.with_column(
        "cpu_hours", col("avg_cpu") * col("duration") / HOUR_SECONDS)
    per_machine = (usage.group_by("machine_id")
                   .agg(cpu_hours=("cpu_hours", "sum")))
    joined = per_machine.join(trace.machine_attributes, on="machine_id")
    hottest = (joined
               .with_column("mean_util",
                            col("cpu_hours") / (col("cpu_capacity")
                                                * trace.horizon_hours))
               .sort("mean_util", descending=True)
               .select("machine_id", "platform", "cpu_capacity", "mean_util")
               .head(5))
    print(hottest.to_string())

    print("\n== Q4: export in the 2011 CSV layout ==")
    legacy = to_2011_tables(trace)
    for name, table in legacy.items():
        print(f"  {name}: {len(table)} rows, columns {table.column_names}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
