#!/usr/bin/env python
"""The paper, end to end: 2011 vs 2019 longitudinal comparison.

Simulates the 2011 cell and the eight 2019 cells (a-h), then prints
every figure and table of the paper as text via the report driver.

    python examples/longitudinal_comparison.py [--cells a,b,c]
        [--machines N] [--hours H] [--scale S] [--out FILE]

Defaults are laptop-scale (a few minutes); raise --machines/--hours for
heavier runs.  The same driver backs the benchmark harness, so this is
also how EXPERIMENTS.md's measured numbers were produced.
"""

import argparse
import sys
import time

from repro.analysis.report import full_report
from repro.trace import encode_cell
from repro.workload import scenario_2011, scenarios_2019


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cells", default="a,b,c,d,e,f,g,h",
                        help="comma-separated 2019 cells to simulate")
    parser.add_argument("--machines", type=int, default=100)
    parser.add_argument("--hours", type=float, default=48.0)
    parser.add_argument("--scale", type=float, default=0.02,
                        help="arrival-rate scale vs the real clusters")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    cells = [c.strip() for c in args.cells.split(",") if c.strip()]

    t0 = time.time()
    print(f"simulating 2011 cell ({args.machines} machines, {args.hours}h)...",
          flush=True)
    trace_2011 = encode_cell(scenario_2011(
        seed=args.seed, machines_per_cell=args.machines,
        horizon_hours=args.hours, arrival_scale=args.scale,
    ).run())

    traces_2019 = []
    for scenario in scenarios_2019(seed=args.seed, machines_per_cell=args.machines,
                                   horizon_hours=args.hours,
                                   arrival_scale=args.scale, cells=cells):
        print(f"simulating 2019 cell {scenario.name}...", flush=True)
        traces_2019.append(encode_cell(scenario.run()))
    print(f"simulation took {time.time() - t0:.0f}s")

    text = full_report([trace_2011], traces_2019)
    print(text)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print(f"report written to {args.out}")


if __name__ == "__main__":
    main(sys.argv[1:])
