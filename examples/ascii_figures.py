#!/usr/bin/env python
"""Draw the paper's key figures as terminal charts.

Simulates one 2019-style cell and one 2011-style cell, then renders:

* figure 2  — stacked hourly usage by tier,
* figure 6  — machine-utilization CCDFs,
* figure 12 — the log-log CCDF of per-job resource-hours,
* figure 3  — usage-by-tier bars.

    python examples/ascii_figures.py [seed]
"""

import sys

from repro.analysis import consumption, machine_util, utilization
from repro.plot import bar_chart, ccdf_chart, stacked_series_chart
from repro.trace import encode_cell
from repro.workload import small_test_scenario


def main(seed: int = 5) -> None:
    print("simulating one 2019 and one 2011 cell...")
    trace_2019 = encode_cell(small_test_scenario(
        seed=seed, era="2019", machines_per_cell=40, horizon_hours=24.0,
        arrival_scale=0.02).run())
    trace_2011 = encode_cell(small_test_scenario(
        seed=seed, era="2011", machines_per_cell=40, horizon_hours=24.0,
        arrival_scale=0.02).run())

    print("\n--- figure 2 (2019): hourly CPU usage by tier, stacked ---")
    series = utilization.usage_timeseries(trace_2019, "cpu")
    print(stacked_series_chart(
        {tier: values for tier, values in series.items() if values.any()},
        width=64, height=12,
        title="fraction of cell CPU capacity used, by tier"))

    print("\n--- figure 6: machine CPU utilization CCDF ---")
    print(ccdf_chart({
        "2019": machine_util.machine_utilization_ccdf(trace_2019, "cpu"),
        "2011": machine_util.machine_utilization_ccdf(trace_2011, "cpu"),
    }, width=64, height=12, title="Pr(machine CPU utilization > x)"))

    print("\n--- figure 12: per-job NCU-hours CCDF (log-log) ---")
    print(ccdf_chart({
        "2019": consumption.usage_ccdf([trace_2019], "cpu"),
        "2011": consumption.usage_ccdf([trace_2011], "cpu"),
    }, logx=True, logy=True, width=64, height=14,
        title="the heavy tail: a straight line on log-log axes"))

    print("\n--- figure 3: average usage by tier (2019 cell) ---")
    fractions = utilization.usage_by_cell([trace_2019], "cpu")[trace_2019.cell]
    print(bar_chart({tier: value for tier, value in fractions.items()},
                    width=48, title="fraction of CPU capacity"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
