#!/usr/bin/env python
"""What-if analysis by trace replay (the loop public traces enable).

1. Simulate a 2019-style cell and record its trace — stand-in for "a
   trace someone published".
2. Reconstruct the workload from the trace alone.
3. Replay it against modified cells:
     - no over-commit (admission at 100% of capacity),
     - no batch queue (beb jobs hit the scheduler directly),
4. Compare utilization, allocation, evictions and scheduling delay.

    python examples/what_if_replay.py [seed]
"""

import dataclasses
import sys

from repro.analysis.sched_delay import median_delay
from repro.analysis.utilization import total_usage_fraction
from repro.sim.cell import CellSim
from repro.trace import encode_cell
from repro.util.rng import RngFactory
from repro.util.timeutil import HOUR_SECONDS
from repro.workload import replay_components, small_test_scenario


def run_variant(name, trace, config):
    parts = replay_components(trace)
    result = CellSim(config or parts.config, parts.machines, parts.workload,
                     RngFactory(1234)).run()
    variant_trace = encode_cell(result)
    u = result.usage
    cap = result.capacity
    hours = trace.horizon / HOUR_SECONDS
    alloc = float((u["cpu_limit"] * u["duration"])[~u["in_alloc"]].sum()) \
        / HOUR_SECONDS / (cap.cpu * hours) if len(u["window_start"]) else 0.0
    print(f"  {name:>22s}: util={total_usage_fraction(variant_trace, 'cpu'):.3f} "
          f"alloc={alloc:.2f} evictions={result.counters.evictions:4d} "
          f"median delay={median_delay(variant_trace):.1f}s")


def main(seed: int = 8) -> None:
    print("== recording the original trace ==")
    scenario = small_test_scenario(seed=seed, era="2019",
                                   machines_per_cell=40, horizon_hours=24.0,
                                   arrival_scale=0.02)
    trace = encode_cell(scenario.run())
    print(f"  cell {trace.cell}: {len(trace.collection_events)} collection "
          f"events, util={total_usage_fraction(trace, 'cpu'):.3f}")

    print("== replaying under what-if configurations ==")
    baseline = replay_components(trace).config
    variants = {
        "faithful replay": None,
        "no over-commit": dataclasses.replace(
            baseline, scheduler=dataclasses.replace(
                baseline.scheduler, overcommit_cpu=1.0, overcommit_mem=1.0)),
        "no batch queue": dataclasses.replace(baseline, batch_queueing=False),
        "aggressive over-commit": dataclasses.replace(
            baseline, scheduler=dataclasses.replace(
                baseline.scheduler, overcommit_cpu=2.6, overcommit_mem=2.4)),
    }
    for name, config in variants.items():
        run_variant(name, trace, config)

    print("\nReading: removing over-commit strands capacity — utilization")
    print("drops sharply and rejected work churns as evictions; extra")
    print("admission headroom calms evictions without buying more usage.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
