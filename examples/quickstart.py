#!/usr/bin/env python
"""Quickstart: simulate a Borg cell, generate its trace, analyze it.

Runs in well under a minute:

    python examples/quickstart.py [seed]

Pipeline demonstrated:
  1. Build a scaled-down 2019-style cell scenario (fleet + calibrated
     synthetic workload).
  2. Run the discrete-event simulation.
  3. Encode the result as 2019-style trace tables and validate the
     section-9 invariants.
  4. Run a few headline analyses (utilization by tier, hogs-and-mice,
     Autopilot slack).
"""

import sys

from repro.analysis import autoscaling, consumption, utilization
from repro.analysis.common import TIER_ORDER
from repro.stats import top_share
from repro.trace import encode_cell, validate_trace
from repro.workload import small_test_scenario


def main(seed: int = 1) -> None:
    print(f"== building scenario (seed={seed}) ==")
    scenario = small_test_scenario(seed=seed, era="2019",
                                   machines_per_cell=40, horizon_hours=24.0,
                                   arrival_scale=0.015)
    print(f"cell {scenario.name!r}: {len(scenario.machines)} machines, "
          f"{len(scenario.workload)} collections, "
          f"capacity {scenario.capacity.cpu:.1f} NCU / {scenario.capacity.mem:.1f} NMU")

    print("== simulating ==")
    result = scenario.run()
    c = result.counters
    print(f"jobs={c.jobs_submitted} alloc_sets={c.alloc_sets_submitted} "
          f"tasks={c.tasks_created} schedules={c.schedule_events} "
          f"evictions={c.evictions} restarts={c.task_restarts}")

    print("== encoding + validating trace ==")
    trace = encode_cell(result)
    for name, table in trace.tables.items():
        print(f"  {name}: {len(table)} rows")
    violations = validate_trace(trace)
    print(f"  invariant violations: {len(violations)}")
    for v in violations[:5]:
        print(f"    {v}")

    print("== average utilization by tier (fraction of capacity) ==")
    for resource in ("cpu", "mem"):
        fractions = utilization.usage_by_cell([trace], resource)[trace.cell]
        parts = "  ".join(f"{t}={fractions[t]:.3f}" for t in TIER_ORDER)
        print(f"  {resource}: {parts}  total={sum(fractions.values()):.3f}")

    print("== hogs and mice (section 7) ==")
    report = consumption.consumption_report([trace], "cpu",
                                            pareto_x_min=0.5)
    s = report.summary
    print(f"  {s.n} jobs; mean={s.mean:.3f} NCU-hours, median={s.median:.2e}")
    print(f"  C^2={s.squared_cv:.0f}; top 1% of jobs carry "
          f"{s.top_1pct_share:.1%} of the load")
    if report.pareto is not None:
        print(f"  Pareto tail: alpha={report.pareto.alpha:.2f} "
              f"(R^2={report.pareto.r_squared:.3f})")

    print("== Autopilot peak-slack medians (section 8) ==")
    slack = autoscaling.summarize_slack([trace])
    for mode, median in sorted(slack.median_slack.items()):
        print(f"  {mode:>12s}: median peak slack {median:.1%}")
    print(f"  full autoscaling saves {slack.fully_vs_manual_saving:.1%} "
          "slack vs manual limits")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
