#!/usr/bin/env python
"""Section 7.3 in action: what heavy tails do to queueing delay.

The paper argues that with C^2 in the tens of thousands, the mice (99%
of jobs) drown behind the hogs (top 1%) unless the scheduler isolates
them.  This example:

  1. simulates a 2019-style cell and extracts per-job NCU-hours,
  2. applies the Pollaczek-Khinchine formula at several loads,
  3. quantifies the isolation benefit (mice-only queue vs shared),
  4. cross-checks P-K against an event-driven M/G/1 simulation.

    python examples/hogs_and_mice.py [seed]
"""

import sys

import numpy as np

from repro.analysis.common import job_usage_integrals
from repro.queueing import (
    compare_isolation,
    mg1_mean_waiting_time_simulated,
    pollaczek_khinchine,
    run_isolation_experiment,
)
from repro.stats import split_hogs_mice, squared_cv, top_share
from repro.trace import encode_cell
from repro.workload import small_test_scenario


def main(seed: int = 2) -> None:
    print("== simulating a 2019-style cell ==")
    scenario = small_test_scenario(seed=seed, era="2019",
                                   machines_per_cell=40, horizon_hours=24.0,
                                   arrival_scale=0.02)
    trace = encode_cell(scenario.run())
    table = job_usage_integrals(trace)
    sizes = table.column("ncu_hours").values
    sizes = sizes[sizes > 0]
    print(f"  {len(sizes)} jobs with nonzero usage")

    print("== tail statistics ==")
    cv2 = squared_cv(sizes)
    print(f"  C^2 = {cv2:.0f} (exponential would be 1)")
    print(f"  top 1% of jobs carry {top_share(sizes, 0.01):.1%} of the load")
    split = split_hogs_mice(sizes, 0.01)
    print(f"  hog threshold: {split.threshold:.2f} NCU-hours "
          f"({split.hog_count} hogs, {split.mouse_count} mice)")

    print("== Pollaczek-Khinchine: mean queueing delay (mean-service units) ==")
    print(f"  {'rho':>5s} {'this workload':>15s} {'if exponential':>15s}")
    for rho in (0.3, 0.5, 0.7, 0.9):
        print(f"  {rho:5.1f} {pollaczek_khinchine(rho, cv2):15.0f} "
              f"{pollaczek_khinchine(rho, 1.0):15.1f}")

    print("== isolating the hogs (the section 7.3 proposal) ==")
    for rho in (0.3, 0.5, 0.7):
        report = compare_isolation(sizes, rho=rho, hog_fraction=0.01)
        print(f"  rho={rho:.1f}: shared-queue delay {report.shared_delay:10.0f} "
              f"-> mice-only {report.mice_only_delay:8.2f} "
              f"({report.speedup:,.0f}x faster; mice C^2={report.mice_cv2:.0f})")

    print("== cross-check: simulated M/G/1 vs the formula (rho=0.5) ==")
    rng = np.random.default_rng(seed)
    # Use the mice only: a full heavy-tailed sample needs astronomically
    # long simulations to converge (that is the point of the section).
    mice = split.mice
    sim = mg1_mean_waiting_time_simulated(rng, mice, rho=0.5, n_jobs=300_000)
    predicted = pollaczek_khinchine(0.5, squared_cv(mice))
    print(f"  simulated mean wait: {sim.normalized_mean_wait:8.2f} mean services")
    print(f"  P-K prediction:      {predicted:8.2f} mean services")

    print("== the multi-server isolation experiment (research direction 5) ==")
    print("  24 servers; 'isolated' reserves a mice-only partition sized to")
    print("  their load share; waits in units of the mean job size.")
    for rho in (0.7, 0.9):
        exp = run_isolation_experiment(np.random.default_rng(seed), sizes,
                                       n_servers=24, rho=rho, n_jobs=60_000)
        print(f"  rho={rho}: mice shared mean={exp.mice_shared.mean_wait:8.2f} "
              f"-> isolated {exp.mice_isolated.mean_wait:.4f} "
              f"({exp.mice_mean_speedup:,.0f}x faster; hogs pay "
              f"{exp.hogs_shared.mean_wait:.1f} -> {exp.hogs_isolated.mean_wait:.1f})")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
