#!/usr/bin/env python
"""Explainable scheduling (paper section 10, research direction 1).

Simulates a cell to a mid-trace moment by replaying its machine
occupancy, then asks the explainer *why* various requests do or don't
place: a small task, a machine-sized monster, a production task that
needs preemption.  The same arithmetic drives the real scheduler; the
explainer is its exhaustive, talkative sibling.

    python examples/explain_scheduling.py [seed]
"""

import sys

import numpy as np

from repro.sim import Machine, Resources, Tier
from repro.sim.entities import Collection, CollectionType, Instance
from repro.sim.explain import explain_placement, format_explanation
from repro.sim.scheduler import SchedulerParams
from repro.workload import build_machines, fleet_2019


def build_loaded_fleet(seed: int, n_machines: int = 30):
    """A 2019-style fleet with realistic occupancy painted on."""
    rng = np.random.default_rng(seed)
    machines = build_machines(fleet_2019(), n_machines, rng)
    cid = 0
    for machine in machines:
        # Fill each machine to a random fraction of its over-commit bound
        # with a mix of production and best-effort work.
        target = rng.uniform(0.3, 0.95)
        while machine.allocated.cpu < target * machine.capacity.cpu * 1.9:
            cid += 1
            tier = Tier.PROD if rng.random() < 0.5 else (
                Tier.BEB if rng.random() < 0.7 else Tier.FREE)
            c = Collection(collection_id=cid,
                           collection_type=CollectionType.JOB,
                           priority=200, tier=tier, user="u", submit_time=0.0)
            request = Resources(float(rng.uniform(0.02, 0.15)),
                                float(rng.uniform(0.02, 0.15)))
            inst = Instance(collection=c, index=0, request=request)
            c.instances.append(inst)
            machine.place(inst)
    # A couple of machines are in maintenance.
    machines[0].up = False
    machines[1].up = False
    return machines


def main(seed: int = 7) -> None:
    machines = build_loaded_fleet(seed)
    params = SchedulerParams(overcommit_cpu=1.9, overcommit_mem=1.8)

    cases = [
        ("a typical best-effort task", Resources(0.05, 0.05), Tier.BEB),
        ("a hungry best-effort task", Resources(0.30, 0.30), Tier.BEB),
        ("the same shape at production priority", Resources(0.30, 0.30), Tier.PROD),
        ("a machine-sized monster", Resources(1.5, 1.5), Tier.PROD),
    ]
    for title, request, tier in cases:
        print("=" * 70)
        print(f"case: {title}")
        explanation = explain_placement(machines, request, tier, params)
        print(format_explanation(explanation, max_machines=4))
        print()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
